package validate

import (
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/explore"
	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/power"
	"amped/internal/precision"
	"amped/internal/transformer"
)

// CS1Batches are the global batch sizes Case Study I sweeps.
var CS1Batches = []int{4096, 8192, 16384}

// CS1NumBatches fixes the training length for absolute training-time
// figures: ~300B tokens at sequence length 2048 and batch 16384, the scale
// of the paper's "~18–21 days" numbers. Smaller batches see proportionally
// more batches so every curve trains on the same token count.
var cs1Tokens = 300e9

// cs1Eval evaluates one Case Study I point on the 128x8 A100 machine,
// tuning N_ub per point (explore.OptimalMicrobatches): the microbatch count
// trades bubble amortization against microbatch efficiency, and the paper's
// exploration implicitly assumes a well-tuned schedule.
func cs1Eval(mp parallel.Mapping, batch int) (*model.Breakdown, error) {
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	est := model.Estimator{
		Model:   &m,
		System:  &sys,
		Mapping: mp,
		Training: model.Training{
			Batch:      parallel.Batch{Global: batch},
			NumBatches: int(cs1Tokens / float64(batch) / 2048),
		},
		Eff: efficiency.Default(),
	}
	_, bd, err := explore.OptimalMicrobatches(est)
	return bd, err
}

// Fig3Config is one breakdown bar of the paper's Fig. 3.
type Fig3Config struct {
	Label     string
	Mapping   parallel.Mapping
	Breakdown *model.Breakdown
}

// Fig3 reproduces the training-time breakdown comparison: DP_inter=64 and
// DP_intra=8 with either PP_inter=2 (negligible bubbles) or TP_inter=2
// (dominant communication).
func Fig3() ([]Fig3Config, error) {
	configs := []Fig3Config{
		{Label: "PP_inter=2", Mapping: parallel.Mapping{DPIntra: 8, PPInter: 2, DPInter: 64}},
		{Label: "TP_inter=2", Mapping: parallel.Mapping{DPIntra: 8, TPInter: 2, DPInter: 64}},
	}
	for i := range configs {
		bd, err := cs1Eval(configs[i].Mapping, 16384)
		if err != nil {
			return nil, fmt.Errorf("validate: fig 3 %s: %w", configs[i].Label, err)
		}
		configs[i].Breakdown = bd
	}
	return configs, nil
}

// SweepPoint is one x-axis position of a case-study sweep figure.
type SweepPoint struct {
	Label   string
	Mapping parallel.Mapping
	// Days maps global batch size to training time in days.
	Days map[int]float64
	// Eff maps global batch size to the microbatch efficiency used.
	Eff map[int]float64
}

// Figure is one reproduced case-study figure: training time versus
// inter-node parallelism split, one curve per batch size.
type Figure struct {
	Name   string
	Points []SweepPoint
}

// cs1Figure evaluates the given mappings for every Case Study I batch size.
func cs1Figure(name string, labels []string, mappings []parallel.Mapping) (*Figure, error) {
	fig := &Figure{Name: name}
	for i, mp := range mappings {
		pt := SweepPoint{
			Label:   labels[i],
			Mapping: mp,
			Days:    map[int]float64{},
			Eff:     map[int]float64{},
		}
		for _, b := range CS1Batches {
			bd, err := cs1Eval(mp, b)
			if err != nil {
				return nil, fmt.Errorf("validate: %s %s batch %d: %w", name, pt.Label, b, err)
			}
			pt.Days[b] = bd.TotalTime().Days()
			pt.Eff[b] = bd.Efficiency
		}
		fig.Points = append(fig.Points, pt)
	}
	return fig, nil
}

// Fig4 reproduces the TP-in-intra-node exploration with TP+PP inter-node:
// scaling up inter-node TP while scaling down PP (DP_inter=2 fixed) raises
// the training time steeply (§VI-C's "almost 3x per step" observation).
func Fig4() (*Figure, error) {
	var labels []string
	var maps []parallel.Mapping
	for _, tp := range []int{1, 2, 4, 8} {
		pp := 64 / tp
		labels = append(labels, fmt.Sprintf("TPi%d/PPi%d", tp, pp))
		maps = append(maps, parallel.Mapping{TPIntra: 8, TPInter: tp, PPInter: pp, DPInter: 2})
	}
	return cs1Figure("Fig4 (TP intra, TP+PP inter)", labels, maps)
}

// Fig5 reproduces TP intra with TP+DP inter-node.
func Fig5() (*Figure, error) {
	var labels []string
	var maps []parallel.Mapping
	for _, tp := range []int{1, 2, 4, 8} {
		labels = append(labels, fmt.Sprintf("TPi%d/DPi%d", tp, 128/tp))
		maps = append(maps, parallel.Mapping{TPIntra: 8, TPInter: tp, DPInter: 128 / tp})
	}
	return cs1Figure("Fig5 (TP intra, TP+DP inter)", labels, maps)
}

// Fig6 reproduces TP intra with PP+DP inter-node, the configuration family
// containing the paper's best (~18–21 day) points.
func Fig6() (*Figure, error) {
	var labels []string
	var maps []parallel.Mapping
	for _, pp := range []int{1, 2, 4, 8, 16, 32, 64} {
		labels = append(labels, fmt.Sprintf("PPi%d/DPi%d", pp, 128/pp))
		maps = append(maps, parallel.Mapping{TPIntra: 8, PPInter: pp, DPInter: 128 / pp})
	}
	return cs1Figure("Fig6 (TP intra, PP+DP inter)", labels, maps)
}

// Fig7 reproduces DP intra with TP+PP inter-node.
func Fig7() (*Figure, error) {
	var labels []string
	var maps []parallel.Mapping
	for _, tp := range []int{1, 2, 4, 8, 16} {
		pp := 64 / tp
		labels = append(labels, fmt.Sprintf("TPi%d/PPi%d", tp, pp))
		maps = append(maps, parallel.Mapping{DPIntra: 8, TPInter: tp, PPInter: pp, DPInter: 2})
	}
	return cs1Figure("Fig7 (DP intra, TP+PP inter)", labels, maps)
}

// Fig8 reproduces DP intra with TP+DP inter-node, the figure whose
// batch-size-dependent trend reversal the paper discusses in §VI-D.
func Fig8() (*Figure, error) {
	var labels []string
	var maps []parallel.Mapping
	for _, tp := range []int{1, 2, 4, 8, 16, 32, 64} {
		labels = append(labels, fmt.Sprintf("TPi%d/DPi%d", tp, 128/tp))
		maps = append(maps, parallel.Mapping{DPIntra: 8, TPInter: tp, DPInter: 128 / tp})
	}
	return cs1Figure("Fig8 (DP intra, TP+DP inter)", labels, maps)
}

// Fig9 reproduces DP intra with PP+DP inter-node.
func Fig9() (*Figure, error) {
	var labels []string
	var maps []parallel.Mapping
	for _, pp := range []int{1, 2, 4, 8, 16, 32, 64} {
		labels = append(labels, fmt.Sprintf("PPi%d/DPi%d", pp, 128/pp))
		maps = append(maps, parallel.Mapping{DPIntra: 8, PPInter: pp, DPInter: 128 / pp})
	}
	return cs1Figure("Fig9 (DP intra, PP+DP inter)", labels, maps)
}

// Conclusions checks the five qualitative findings of §VI-E against this
// implementation; each entry reports the claim and whether it held.
type Conclusion struct {
	Claim  string
	Holds  bool
	Detail string
}

// CaseStudy1Conclusions re-derives the paper's §VI-E findings.
func CaseStudy1Conclusions() ([]Conclusion, error) {
	var out []Conclusion
	check := func(claim string, holds bool, detail string) {
		out = append(out, Conclusion{Claim: claim, Holds: holds, Detail: detail})
	}

	// ① Larger batches keep DP/PP-parallel configs efficient.
	small, err := cs1Eval(parallel.Mapping{DPIntra: 8, DPInter: 128}, 4096)
	if err != nil {
		return nil, err
	}
	large, err := cs1Eval(parallel.Mapping{DPIntra: 8, DPInter: 128}, 16384)
	if err != nil {
		return nil, err
	}
	check("① large batches sustain efficiency under wide DP",
		large.Efficiency > small.Efficiency,
		fmt.Sprintf("eff %.2f at B=4096 vs %.2f at B=16384", small.Efficiency, large.Efficiency))

	// ② TP keeps efficiency high but is communication-bound inter-node.
	tpIntra, err := cs1Eval(parallel.Mapping{TPIntra: 8, DPInter: 128}, 16384)
	if err != nil {
		return nil, err
	}
	tpInter, err := cs1Eval(parallel.Mapping{TPIntra: 8, TPInter: 8, PPInter: 8, DPInter: 2}, 16384)
	if err != nil {
		return nil, err
	}
	check("② TP efficient intra-node, expensive inter-node",
		tpInter.TotalTime() > tpIntra.TotalTime() &&
			float64(tpInter.TPInterComm) > 5*float64(tpInter.TPIntraComm),
		fmt.Sprintf("%.1f days (TP inter) vs %.1f days (TP intra)",
			tpInter.TotalTime().Days(), tpIntra.TotalTime().Days()))

	// ③ DP and PP beat TP across nodes.
	ppInter, err := cs1Eval(parallel.Mapping{TPIntra: 8, PPInter: 8, DPInter: 16}, 16384)
	if err != nil {
		return nil, err
	}
	check("③ DP/PP inter-node faster than TP inter-node",
		tpInter.TotalTime() > ppInter.TotalTime() && tpInter.TotalTime() > tpIntra.TotalTime(),
		fmt.Sprintf("TP-inter %.1f vs PP-inter %.1f days",
			tpInter.TotalTime().Days(), ppInter.TotalTime().Days()))

	// ④ Pure DP inter beats pure PP inter; the DP all-reduce is far
	// cheaper than pipeline bubbles.
	pureDP, err := cs1Eval(parallel.Mapping{TPIntra: 8, DPInter: 128}, 16384)
	if err != nil {
		return nil, err
	}
	purePP, err := cs1Eval(parallel.Mapping{TPIntra: 8, PPInter: 64, DPInter: 2}, 16384)
	if err != nil {
		return nil, err
	}
	arTime := pureDP.GradIntraComm + pureDP.GradInterComm
	check("④ DP all-reduce cheaper than PP bubbles inter-node",
		purePP.TotalTime() > pureDP.TotalTime() && purePP.Bubble > 2*arTime,
		fmt.Sprintf("DP %.1f days (AR %v) vs PP %.1f days (bubble %v)",
			pureDP.TotalTime().Days(), arTime, purePP.TotalTime().Days(), purePP.Bubble))

	// ⑤ For the same inter-node config, TP intra-node beats DP intra.
	dpIntra, err := cs1Eval(parallel.Mapping{DPIntra: 8, DPInter: 128}, 16384)
	if err != nil {
		return nil, err
	}
	check("⑤ TP intra-node faster than DP intra-node",
		float64(dpIntra.TotalTime()) > 1.4*float64(tpIntra.TotalTime()),
		fmt.Sprintf("DP-intra %.1f vs TP-intra %.1f days",
			dpIntra.TotalTime().Days(), tpIntra.TotalTime().Days()))

	return out, nil
}

// Fig10Point is one node-width configuration of Case Study II.
type Fig10Point struct {
	AccelsPerNode int
	// DPDays and PPDays are training times with DP- or PP-dominated
	// inter-node parallelism.
	DPDays, PPDays float64
	// PPBubbleShare is the pipeline idle fraction of the PP run.
	PPBubbleShare float64
	// BreakEvenIdle is the idle-power fraction below which the PP run is
	// the more energy-efficient choice.
	BreakEvenIdle float64
}

// Fig10 reproduces Case Study II: Megatron 145B at batch 8192 on low-end
// systems (1/2/4/8 accelerators + EDR NICs per node, 1024 accelerators
// total), comparing DP against PP for inter-node parallelism.
func Fig10() ([]Fig10Point, error) {
	m := transformer.Megatron145B()
	var out []Fig10Point
	for _, n := range []int{1, 2, 4, 8} {
		sys := hardware.LowEndSystem(n)
		nodes := sys.Nodes
		eval := func(mp parallel.Mapping) (*model.Breakdown, error) {
			est := model.Estimator{
				Model:   &m,
				System:  &sys,
				Mapping: mp,
				Training: model.Training{
					Batch:      parallel.Batch{Global: 8192},
					NumBatches: int(cs1Tokens / (8192.0 * 2048)),
				},
				Eff: efficiency.Default(),
			}
			_, bd, err := explore.OptimalMicrobatches(est)
			return bd, err
		}
		dp, err := eval(parallel.Mapping{TPIntra: n, DPInter: nodes})
		if err != nil {
			return nil, fmt.Errorf("validate: fig 10 DP n=%d: %w", n, err)
		}
		// PP-dominated: the deepest pipeline the 80-layer model supports
		// (64 stages), data parallelism over the remaining nodes.
		pp, err := eval(parallel.Mapping{TPIntra: n, PPInter: 64, DPInter: nodes / 64})
		if err != nil {
			return nil, fmt.Errorf("validate: fig 10 PP n=%d: %w", n, err)
		}
		be, err := power.BreakEvenIdleFraction(dp, pp, &sys)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Point{
			AccelsPerNode: n,
			DPDays:        dp.TotalTime().Days(),
			PPDays:        pp.TotalTime().Days(),
			PPBubbleShare: float64(pp.Bubble) / float64(pp.PerBatch()),
			BreakEvenIdle: be,
		})
	}
	return out, nil
}

// Fig11Bar is one bar of the optical-substrate study.
type Fig11Bar struct {
	Label string
	// Performance is normalized training throughput (reference = 1).
	Performance float64
	// MoECommShare is the MoE all-to-all share of the per-batch time.
	MoECommShare float64
	// Days is the absolute training time for the fixed token budget.
	Days float64
}

// fig11Batch is the Case Study III global batch: the paper's "batch size
// 8192" rounded up to 9216 so it divides the 384-node data-parallel width.
const fig11Batch = 9216

// Fig11 reproduces Case Study III: GLaM on 3072 H100-class accelerators at
// 8-bit precision, TP within a node, DP across nodes, expert parallelism
// on. The seven bars follow the paper: an NDR InfiniBand reference, Opt. 1
// (fiber per accelerator), Opt. 2 (16/32/48 accelerators per substrate),
// and Opt. 3 (2x and 4x off-chip bandwidth).
func Fig11() ([]Fig11Bar, error) {
	g := transformer.GLaM()
	type cfg struct {
		label string
		sys   hardware.System
	}
	ref := hardware.System{
		Name:              "reference 8xH100 + NDR",
		Accel:             hardware.NvidiaH100(),
		Nodes:             384,
		AccelsPerNode:     8,
		Intra:             hardware.NVLinkH100(),
		Inter:             hardware.InfinibandNDR(),
		NICsPerNode:       8,
		IdlePowerFraction: 0.3,
	}
	configs := []cfg{
		{"reference (NDR)", ref},
		{"Opt1 4x2 (8/node)", hardware.OpticalSystem(hardware.OpticalOptions{AccelsPerNode: 8, EdgeAccels: 8, TotalAccels: 3072})},
		{"Opt2 4x4 (16/node)", hardware.OpticalSystem(hardware.OpticalOptions{AccelsPerNode: 16, EdgeAccels: 12, TotalAccels: 3072})},
		{"Opt2 4x8 (32/node)", hardware.OpticalSystem(hardware.OpticalOptions{AccelsPerNode: 32, EdgeAccels: 20, TotalAccels: 3072})},
		{"Opt2 6x8 (48/node)", hardware.OpticalSystem(hardware.OpticalOptions{AccelsPerNode: 48, EdgeAccels: 24, TotalAccels: 3072})},
		{"Opt3 2x off-chip BW", hardware.OpticalSystem(hardware.OpticalOptions{AccelsPerNode: 48, EdgeAccels: 24, OffChipBWFactor: 2, TotalAccels: 3072})},
		{"Opt3 4x off-chip BW", hardware.OpticalSystem(hardware.OpticalOptions{AccelsPerNode: 48, EdgeAccels: 24, OffChipBWFactor: 4, TotalAccels: 3072})},
	}
	var out []Fig11Bar
	var refTime float64
	for i, c := range configs {
		nodes := c.sys.Nodes
		mp := parallel.Mapping{TPIntra: c.sys.AccelsPerNode, DPInter: nodes, ExpertParallel: true}
		est := model.Estimator{
			Model:   &g,
			System:  &c.sys,
			Mapping: mp,
			Training: model.Training{
				Batch:      parallel.Batch{Global: fig11Batch},
				NumBatches: int(cs1Tokens / (float64(fig11Batch) * 1024)),
				// 8-bit training per the paper, with the customary fp32
				// gradient accumulation/reduction.
				Operands: precision.Operands{
					Param: precision.FP8, Act: precision.FP8,
					Nonlin: precision.FP32, Grad: precision.FP32,
				},
			},
			Eff: efficiency.Default(),
		}
		_, bd, err := explore.OptimalMicrobatches(est)
		if err != nil {
			return nil, fmt.Errorf("validate: fig 11 %s: %w", c.label, err)
		}
		t := float64(bd.TotalTime())
		if i == 0 {
			refTime = t
		}
		out = append(out, Fig11Bar{
			Label:        c.label,
			Performance:  refTime / t,
			MoECommShare: float64(bd.MoEComm) / float64(bd.PerBatch()),
			Days:         bd.TotalTime().Days(),
		})
	}
	return out, nil
}
