package validate

import (
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
)

// Attribution quantifies what each modeled mechanism contributes on the
// Table II 145B row: starting from the naive compute-only estimate
// (peak x utilization — the baseline predictor), mechanisms are enabled
// one at a time and the predicted TFLOP/s/GPU moves toward the published
// 148. This is the "why AMPeD works" analysis: the error the baseline
// makes is exactly the sum of the effects the paper's equations model.
type Attribution struct {
	// Mechanism names the effect enabled at this step.
	Mechanism string
	// TFLOPs is the prediction with all mechanisms up to this one active.
	TFLOPs float64
	// Delta is the change this mechanism alone caused.
	Delta float64
	// ErrVsPublished is the running error against the measurement.
	ErrVsPublished float64
}

// Attribute builds the mechanism ladder for the Table II 145B row.
func Attribute() ([]Attribution, error) {
	row := TableIIData[0] // 145B
	m, err := megatronBySize(row.ModelSize)
	if err != nil {
		return nil, err
	}
	sys := hardware.SeleneLike(row.TP * row.PP * row.DP)

	// The fully-featured estimator; mechanisms are then disabled from the
	// top so each ladder step re-enables one.
	full := model.Estimator{
		Model:   &m,
		System:  &sys,
		Mapping: parallel.Mapping{TPIntra: row.TP, PPInter: row.PP, DPInter: row.DP},
		Training: model.Training{
			Batch: parallel.Batch{
				Global:       row.GlobalBatch,
				Microbatches: row.GlobalBatch / row.DP,
			},
			BubbleRatio: 1,
		},
		Eff: efficiency.Fixed(TableIIEfficiency),
	}

	// Each step is a predicate list; disabled mechanisms are stripped from
	// the evaluated breakdown by zeroing their components.
	type step struct {
		name string
		keep func(*model.Breakdown) float64 // per-batch seconds kept so far
	}
	bd, err := full.Evaluate()
	if err != nil {
		return nil, err
	}
	computeFwdBwd := float64(bd.ComputeForward + bd.ComputeBackward)
	steps := []step{
		{"compute fwd+bwd (near the naive baseline)", func(b *model.Breakdown) float64 {
			return computeFwdBwd
		}},
		{"+ weight update (Eq. 12)", func(b *model.Breakdown) float64 {
			return float64(b.ComputeTime())
		}},
		{"+ pipeline bubbles (Eq. 8)", func(b *model.Breakdown) float64 {
			return float64(b.ComputeTime() + b.Bubble)
		}},
		{"+ TP/PP communication (Eq. 5-7)", func(b *model.Breakdown) float64 {
			return float64(b.ComputeTime() + b.Bubble +
				b.TPIntraComm + b.TPInterComm + b.PPComm + b.MoEComm)
		}},
		{"+ gradient all-reduce (Eq. 10-11)", func(b *model.Breakdown) float64 {
			return float64(b.PerBatch())
		}},
	}

	flops := float64(bd.ModelFLOPs)
	workers := float64(bd.Workers)
	var out []Attribution
	prev := 0.0
	for i, st := range steps {
		t := st.keep(bd)
		tf := flops / t / workers / 1e12
		a := Attribution{
			Mechanism:      st.name,
			TFLOPs:         tf,
			ErrVsPublished: PercentError(tf, row.Published),
		}
		if i > 0 {
			a.Delta = tf - prev
		}
		prev = tf
		out = append(out, a)
	}
	// Sanity: the final rung is the Table II prediction.
	if last := out[len(out)-1]; PercentError(last.TFLOPs, 147) > 2 {
		return nil, fmt.Errorf("validate: attribution ladder drifted from Table II: %.1f", last.TFLOPs)
	}
	return out, nil
}
