package validate

import "fmt"

// Summary is the whole reproduction's scorecard: the worst error of every
// quantitative artifact and the pass/fail state of the qualitative ones.
type Summary struct {
	// TableIIMaxErr is the worst TFLOP/s error vs published measurements.
	TableIIMaxErr float64
	// TableIIIMaxErr is the worst GPipe-speedup error vs published.
	TableIIIMaxErr float64
	// Fig2aMaxDev and Fig2bMaxDev are the worst predicted-vs-simulated
	// deviations of the validation curves.
	Fig2aMaxDev, Fig2bMaxDev float64
	// Fig2cErrAt60 is the converged error of the batch-size sweep.
	Fig2cErrAt60 float64
	// ConclusionsHolding counts the §VI-E findings that hold (of 5).
	ConclusionsHolding int
	// Fig10CrossoverOK records the DP/PP crossover direction.
	Fig10CrossoverOK bool
	// Fig11Compound is the optical ladder's final speedup.
	Fig11Compound float64
}

// WithinPaperBound reports whether every quantitative error sits inside the
// paper's 12% headline and all qualitative artifacts reproduce.
func (s Summary) WithinPaperBound() bool {
	return s.TableIIMaxErr <= MaxPaperError &&
		s.TableIIIMaxErr <= MaxPaperError &&
		s.Fig2aMaxDev <= MaxPaperError &&
		s.Fig2bMaxDev <= MaxPaperError &&
		s.Fig2cErrAt60 <= MaxPaperError &&
		s.ConclusionsHolding == 5 &&
		s.Fig10CrossoverOK &&
		s.Fig11Compound > 2
}

// String renders the scorecard.
func (s Summary) String() string {
	verdict := "FAILS the paper's 12% bound"
	if s.WithinPaperBound() {
		verdict = "within the paper's 12% bound"
	}
	return fmt.Sprintf(
		"TableII %.1f%% | TableIII %.1f%% | Fig2a %.1f%% | Fig2b %.1f%% | Fig2c@60 %.1f%% | conclusions %d/5 | Fig10 crossover %v | Fig11 %.2fx — %s",
		s.TableIIMaxErr, s.TableIIIMaxErr, s.Fig2aMaxDev, s.Fig2bMaxDev,
		s.Fig2cErrAt60, s.ConclusionsHolding, s.Fig10CrossoverOK, s.Fig11Compound, verdict)
}

// Summarize runs every artifact and collects the scorecard.
func Summarize() (*Summary, error) {
	var s Summary

	rows, err := TableII()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.ErrVsPublished > s.TableIIMaxErr {
			s.TableIIMaxErr = r.ErrVsPublished
		}
	}

	t3, err := TableIII()
	if err != nil {
		return nil, err
	}
	s.TableIIIMaxErr = t3.MaxErrVsPublished

	worst := func(pts []Fig2Point) float64 {
		var w float64
		for _, p := range pts {
			if e := PercentError(p.Predicted, p.Simulated); e > w {
				w = e
			}
		}
		return w
	}
	a, err := Fig2a()
	if err != nil {
		return nil, err
	}
	s.Fig2aMaxDev = worst(a)
	b, err := Fig2b()
	if err != nil {
		return nil, err
	}
	s.Fig2bMaxDev = worst(b)

	c, err := Fig2c()
	if err != nil {
		return nil, err
	}
	for _, p := range c {
		if p.Microbatch == 60 {
			s.Fig2cErrAt60 = p.Err
		}
	}

	cons, err := CaseStudy1Conclusions()
	if err != nil {
		return nil, err
	}
	for _, cc := range cons {
		if cc.Holds {
			s.ConclusionsHolding++
		}
	}

	f10, err := Fig10()
	if err != nil {
		return nil, err
	}
	s.Fig10CrossoverOK = len(f10) == 4 &&
		f10[0].PPDays < f10[0].DPDays && f10[3].DPDays < f10[3].PPDays

	f11, err := Fig11()
	if err != nil {
		return nil, err
	}
	s.Fig11Compound = f11[len(f11)-1].Performance

	return &s, nil
}
