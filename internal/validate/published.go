// Package validate regenerates every table and figure of the AMPeD paper's
// validation and case-study sections and compares the reproduction against
// the published numbers embedded here.
//
// Three kinds of data appear:
//   - published measurements from the literature ([8] Megatron-LM SC'21,
//     [26] GPipe) that the paper validated against (Tables II, III, Fig. 2c);
//   - the paper's own AMPeD predictions for those points (the reproduction
//     target: if our implementation matches the paper's model, these columns
//     should agree closely);
//   - hardware experiments the paper ran on machines we do not have
//     (Fig. 1, 2a, 2b), which this repo substitutes with the discrete-event
//     simulators in internal/pipesim and internal/collective.
package validate

import "fmt"

// PercentError returns |got-want|/|want| in percent.
func PercentError(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want * 100
	if d < 0 {
		d = -d
	}
	return d
}

// TableIIPublished is one row of the paper's Table II.
type TableIIPublished struct {
	// ModelSize names the Megatron configuration.
	ModelSize string
	// TP, PP, DP are the mapping of [8] as quoted by the paper.
	TP, PP, DP int
	// GlobalBatch is the batch size of [8] for this configuration.
	GlobalBatch int
	// PaperAMPeD is the AMPeD prediction column of Table II.
	PaperAMPeD float64
	// Published is the measured TFLOP/s/GPU column of Table II (from [8]).
	Published float64
	// PaperError is the error the paper reports between the two.
	PaperError float64
}

// TableIIData is the paper's Table II, with the [8] batch sizes.
var TableIIData = []TableIIPublished{
	{ModelSize: "145B", TP: 8, PP: 8, DP: 24, GlobalBatch: 2304, PaperAMPeD: 147, Published: 148, PaperError: 0.6},
	{ModelSize: "310B", TP: 8, PP: 16, DP: 12, GlobalBatch: 2160, PaperAMPeD: 162, Published: 155, PaperError: 4.5},
	{ModelSize: "530B", TP: 8, PP: 35, DP: 9, GlobalBatch: 2520, PaperAMPeD: 148.6, Published: 163, PaperError: 8.8},
	{ModelSize: "1T", TP: 8, PP: 64, DP: 6, GlobalBatch: 3072, PaperAMPeD: 144.3, Published: 163, PaperError: 11.47},
}

// TableIIIData is the paper's Table III: normalized GPipe training
// throughput on P100 GPUs with 32 microbatches.
var TableIIIData = struct {
	GPUs           []int
	Published      []float64 // [26] as normalized by the paper
	PaperPredicted []float64 // the paper's AMPeD prediction row
}{
	GPUs:           []int{2, 4, 8},
	Published:      []float64{1, 1.8, 3.3},
	PaperPredicted: []float64{1, 1.84, 3.19},
}

// Fig2cPublished approximates the published GPT-3 175B per-GPU throughput
// versus microbatch size on 96 GPUs with pipeline parallelism ([8], as
// digitized from the paper's Fig. 2c: AMPeD's error is ~11% at microbatch
// 12 and ~2% at 60, against a curve saturating around 152 TFLOP/s/GPU).
var Fig2cPublished = struct {
	Microbatch []float64
	TFLOPs     []float64
}{
	Microbatch: []float64{4, 8, 12, 24, 36, 48, 60},
	TFLOPs:     []float64{112, 130, 140, 148, 150, 151, 152},
}

// MaxPaperError is the paper's headline validation bound: all AMPeD
// predictions land within 12% of published measurements.
const MaxPaperError = 12.0

// String renders a published Table II row.
func (r TableIIPublished) String() string {
	return fmt.Sprintf("%s (TP%d PP%d DP%d): paper %g vs published %g (%.2f%%)",
		r.ModelSize, r.TP, r.PP, r.DP, r.PaperAMPeD, r.Published, r.PaperError)
}
