package validate

import (
	"fmt"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// TableIIIResult is the reproduced Table III: normalized GPipe training
// throughput (speedup over 2 GPUs) for the 24-layer transformer on P100s
// behind PCIe with 32 microbatches.
type TableIIIResult struct {
	GPUs []int
	// Published and PaperPredicted echo the embedded Table III rows.
	Published, PaperPredicted []float64
	// Predicted is this implementation's speedup row.
	Predicted []float64
	// MaxErrVsPublished and MaxErrVsPaper are the worst-row errors.
	MaxErrVsPublished, MaxErrVsPaper float64
}

// TableIIIBatch is the global batch used for the GPipe reproduction. The
// paper tunes the microbatch to the P100's memory; with M=32 microbatches
// this batch gives microbatch size 8, which fits a 16 GB card for the
// 24-layer model.
const TableIIIBatch = 256

// TableIII reproduces the paper's Table III on the modeled P100+PCIe
// machine: pipeline-parallel GPipe training, M=32, speedups normalized to
// the 2-GPU run.
func TableIII() (*TableIIIResult, error) {
	times := make([]float64, len(TableIIIData.GPUs))
	for i, gpus := range TableIIIData.GPUs {
		sys := hardware.P100Cluster(gpus)
		m := transformer.GPipe24()
		est := model.Estimator{
			Model:   &m,
			System:  &sys,
			Mapping: parallel.Mapping{PPIntra: gpus},
			Training: model.Training{
				Batch:       parallel.Batch{Global: TableIIIBatch, Microbatches: 32},
				BubbleRatio: 1, // plain GPipe fill-drain, no overlap
			},
		}
		bd, err := est.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("validate: table III %d GPUs: %w", gpus, err)
		}
		times[i] = float64(bd.PerBatch())
	}
	res := &TableIIIResult{
		GPUs:           TableIIIData.GPUs,
		Published:      TableIIIData.Published,
		PaperPredicted: TableIIIData.PaperPredicted,
		Predicted:      make([]float64, len(times)),
	}
	for i, t := range times {
		res.Predicted[i] = times[0] / t
		if e := PercentError(res.Predicted[i], res.Published[i]); e > res.MaxErrVsPublished {
			res.MaxErrVsPublished = e
		}
		if e := PercentError(res.Predicted[i], res.PaperPredicted[i]); e > res.MaxErrVsPaper {
			res.MaxErrVsPaper = e
		}
	}
	return res, nil
}
