package validate

import (
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// TableIIEfficiency is the single calibrated microbatch efficiency used for
// every Table II row. The paper derives eff from the measured runs ("we use
// the average microbatch efficiency as obtained during the runtime"); this
// reproduction calibrates once against the 145B row and holds the value
// fixed across the other three, so the remaining rows are genuine
// predictions.
const TableIIEfficiency = 0.55

// TableIIRow is one reproduced row of Table II.
type TableIIRow struct {
	TableIIPublished
	// Predicted is this implementation's TFLOP/s/GPU.
	Predicted float64
	// BubbleShare and CommShare decompose the per-batch time.
	BubbleShare, CommShare float64
	// ErrVsPublished compares against the measured value, the paper's own
	// error metric; ErrVsPaper compares against the paper's AMPeD column
	// (how faithfully this reproduction matches the paper's model).
	ErrVsPublished, ErrVsPaper float64
}

// megatronBySize maps Table II's model names to architecture presets.
func megatronBySize(size string) (transformer.Model, error) {
	switch size {
	case "145B":
		return transformer.Megatron145B(), nil
	case "310B":
		return transformer.Megatron310B(), nil
	case "530B":
		return transformer.Megatron530B(), nil
	case "1T":
		return transformer.Megatron1T(), nil
	default:
		return transformer.Model{}, fmt.Errorf("validate: unknown Megatron size %q", size)
	}
}

// TableII reproduces the paper's Table II: AMPeD-predicted TFLOP/s/GPU for
// the four Megatron configurations on a Selene-like A100 machine, with
// microbatch size 1 (Megatron's setting, so N_ub equals the per-replica
// batch) and R = 1 (the paper's no-overlap setting).
func TableII() ([]TableIIRow, error) {
	out := make([]TableIIRow, 0, len(TableIIData))
	for _, row := range TableIIData {
		m, err := megatronBySize(row.ModelSize)
		if err != nil {
			return nil, err
		}
		sys := hardware.SeleneLike(row.TP * row.PP * row.DP)
		est := model.Estimator{
			Model:   &m,
			System:  &sys,
			Mapping: parallel.Mapping{TPIntra: row.TP, PPInter: row.PP, DPInter: row.DP},
			Training: model.Training{
				Batch: parallel.Batch{
					Global:       row.GlobalBatch,
					Microbatches: row.GlobalBatch / row.DP, // microbatch size 1
				},
				BubbleRatio: 1,
			},
			Eff: efficiency.Fixed(TableIIEfficiency),
		}
		bd, err := est.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("validate: table II %s: %w", row.ModelSize, err)
		}
		per := float64(bd.PerBatch())
		out = append(out, TableIIRow{
			TableIIPublished: row,
			Predicted:        bd.TFLOPSPerGPU(),
			BubbleShare:      float64(bd.Bubble) / per,
			CommShare:        float64(bd.CommTime()) / per,
			ErrVsPublished:   PercentError(bd.TFLOPSPerGPU(), row.Published),
			ErrVsPaper:       PercentError(bd.TFLOPSPerGPU(), row.PaperAMPeD),
		})
	}
	return out, nil
}
