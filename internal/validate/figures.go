package validate

import (
	"fmt"

	"amped/internal/collective"
	"amped/internal/efficiency"
	"amped/internal/eventsim"
	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/pipesim"
	"amped/internal/transformer"
	"amped/internal/units"
)

// vEff is the microbatch-efficiency calibration for the minGPT validation
// runs on the HGX-2 node ("we use the average microbatch efficiency as
// obtained during the runtime of the experiment").
func vEff() efficiency.Saturating { return efficiency.Saturating{A: 0.6, B: 8, Floor: 0.05} }

// Fig2Point is one (GPU count, normalized time) pair with both sources.
type Fig2Point struct {
	GPUs int
	// Simulated is the discrete-event "experimental" substitute.
	Simulated float64
	// Predicted is the analytical model's value.
	Predicted float64
}

// fig2aBatch is the fixed global batch of the DP validation run.
const fig2aBatch = 256

// minGPTComputeTime returns the forward+backward+update compute time of
// one batch slice of b sequences on a single V100 at the given efficiency —
// the task-granularity input the DES schedules.
func minGPTComputeTime(m *transformer.Model, b int, eff float64) units.Seconds {
	accel := hardware.NvidiaV100()
	var macs, nonlin float64
	for l := 0; l < m.Layers; l++ {
		macs += float64(m.LayerMACs(l, b))
		nonlin += float64(m.LayerNonlin(l, b))
	}
	macs += float64(m.EmbeddingMACs(b))
	fwd := macs/float64(accel.MACRate(eff)) + 2*nonlin/float64(accel.NonlinRate())
	update := (m.TotalParams()) / float64(accel.MACRate(eff))
	return units.Seconds(3*fwd) + units.Seconds(update) // fwd + 2x bwd + update
}

// Fig2a reproduces the DP validation (paper Fig. 2a): normalized training
// time of minGPT-85M on 1–16 GPUs of an HGX-2. The "experimental" curve is
// replaced by a discrete-event execution of the same schedule: each GPU
// computes its batch shard, then the cohort runs a simulated ring
// all-reduce of the fp32 gradients over NVLink.
func Fig2a() ([]Fig2Point, error) {
	m := transformer.MinGPT()
	eff := vEff()
	var out []Fig2Point
	for _, gpus := range []int{1, 2, 4, 8, 16} {
		per := fig2aBatch / gpus
		e := eff.Eff(float64(per))

		// Discrete-event substitute for the hardware run.
		comp := minGPTComputeTime(&m, per, e)
		var comm units.Seconds
		if gpus > 1 {
			gradBits := units.Bits(m.TotalParams() * 32)
			comm = collective.RingAllReduce(gpus, gradBits, hardware.NVLinkV100()).Time
		}
		sim := float64(comp + comm)

		// Analytical prediction.
		sys := hardware.HGX2(gpus)
		est := model.Estimator{
			Model:   &m,
			System:  &sys,
			Mapping: parallel.Mapping{DPIntra: gpus},
			Training: model.Training{
				Batch:            parallel.Batch{Global: fig2aBatch, Microbatches: 1},
				IncludeEmbedding: true,
			},
			Eff: eff,
		}
		bd, err := est.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("validate: fig 2a %d GPUs: %w", gpus, err)
		}
		out = append(out, Fig2Point{GPUs: gpus, Simulated: sim, Predicted: float64(bd.PerBatch())})
	}
	// Normalize both curves to their 1-GPU values, as the paper plots.
	ref := out[0]
	for i := range out {
		out[i].Simulated /= ref.Simulated
		out[i].Predicted /= ref.Predicted
	}
	return out, nil
}

// fig2bBatch returns the PP validation's global batch for a pipeline of
// depth n: the paper scales the batch with the GPU count but hits the
// torchgpipe last-stage memory wall beyond 8 GPUs, so the batch stops
// growing there (the cause of the 8->16 saturation in Fig. 2b).
func fig2bBatch(n int) int {
	if n > 8 {
		return 32 * 8
	}
	return 32 * n
}

// Fig2b reproduces the PP validation (paper Fig. 2b): normalized training
// time of the 1.24B-parameter minGPT variant under GPipe pipelining on
// 2–16 GPUs, N_ub equal to the pipeline depth. The "experimental" curve is
// the pipesim discrete-event schedule.
func Fig2b() ([]Fig2Point, error) {
	m := transformer.MinGPTPipeline()
	eff := vEff()
	var out []Fig2Point
	for _, gpus := range []int{2, 4, 8, 16} {
		batch := fig2bBatch(gpus)
		nub := gpus
		ub := batch / nub
		e := eff.Eff(float64(ub))

		// DES: per-stage per-microbatch task times from the same
		// accelerator description, executed as a real GPipe schedule.
		layersPerStage := float64(m.Layers) / float64(gpus)
		fullFwd := float64(minGPTComputeTime(&m, ub, e)) / 3 // one forward
		stageFwd := fullFwd * layersPerStage / float64(m.Layers)
		comm := float64(m.ActivationsPerLayer(ub)) * 16 / float64(hardware.NVLinkV100().Bandwidth)
		res, err := pipesim.Run(pipesim.Config{
			Stages:       gpus,
			Microbatches: nub,
			FwdTime:      eventsim.Time(stageFwd),
			BwdTime:      eventsim.Time(2 * stageFwd),
			CommTime:     eventsim.Time(comm + float64(hardware.NVLinkV100().Latency)),
		})
		if err != nil {
			return nil, fmt.Errorf("validate: fig 2b pipesim %d GPUs: %w", gpus, err)
		}
		// Throughput is what saturates; per-sequence time compares runs
		// with different batch sizes.
		sim := float64(res.Makespan) / float64(batch)

		sys := hardware.HGX2(gpus)
		est := model.Estimator{
			Model:   &m,
			System:  &sys,
			Mapping: parallel.Mapping{PPIntra: gpus},
			Training: model.Training{
				Batch:            parallel.Batch{Global: batch, Microbatches: nub},
				IncludeEmbedding: true,
				BubbleRatio:      1,
			},
			Eff: eff,
		}
		bd, err := est.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("validate: fig 2b %d GPUs: %w", gpus, err)
		}
		out = append(out, Fig2Point{
			GPUs:      gpus,
			Simulated: sim,
			Predicted: float64(bd.PerBatch()) / float64(batch),
		})
	}
	ref := out[0]
	for i := range out {
		out[i].Simulated /= ref.Simulated
		out[i].Predicted /= ref.Predicted
	}
	return out, nil
}

// Fig2cPoint is one batch-sweep point of the GPT-3 175B throughput curve.
type Fig2cPoint struct {
	// Microbatch is ub, the swept microbatch size.
	Microbatch float64
	// Published is the digitized [8] measurement.
	Published float64
	// Predicted is this implementation's TFLOP/s/GPU.
	Predicted float64
	// Err is the relative error in percent.
	Err float64
}

// fig2cEff is the Fig. 2c efficiency calibration (per-scenario fit, as the
// paper prescribes for eff inputs).
func fig2cEff() efficiency.Saturating { return efficiency.Saturating{A: 0.82, B: 3.5} }

// Fig2c reproduces the paper's Fig. 2c: GPT-3 175B on 96 A100s with
// pipeline parallelism only (8 stages per node, 12 nodes), sweeping the
// microbatch size with N_ub = 96. Megatron's interleaved schedule overlaps
// about half the naive bubbles, modeled with R = 0.5 (the knob the paper
// introduces for exactly this purpose).
func Fig2c() ([]Fig2cPoint, error) {
	m := transformer.GPT3175B()
	sys := hardware.SeleneLike(96)
	var out []Fig2cPoint
	for i, ub := range Fig2cPublished.Microbatch {
		nub := 96
		batch := int(ub) * nub
		est := model.Estimator{
			Model:   &m,
			System:  &sys,
			Mapping: parallel.Mapping{PPIntra: 8, PPInter: 12},
			Training: model.Training{
				Batch:       parallel.Batch{Global: batch, Microbatches: nub},
				BubbleRatio: 0.5,
			},
			Eff: fig2cEff(),
		}
		bd, err := est.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("validate: fig 2c ub=%g: %w", ub, err)
		}
		pub := Fig2cPublished.TFLOPs[i]
		out = append(out, Fig2cPoint{
			Microbatch: ub,
			Published:  pub,
			Predicted:  bd.TFLOPSPerGPU(),
			Err:        PercentError(bd.TFLOPSPerGPU(), pub),
		})
	}
	return out, nil
}

// Fig1Result is the utilization substitute for the paper's Fig. 1: mean
// device utilization during the DP and PP validation runs.
type Fig1Result struct {
	// DPUtilization is the per-GPU utilization of the 8-GPU DP run (the
	// compute share of each batch; all-reduce time is the idle part).
	DPUtilization float64
	// PPUtilization is the mean stage utilization of the 4-GPU GPipe run.
	PPUtilization []float64
	// PPBubbleFraction is the measured pipeline idle share.
	PPBubbleFraction float64
	// PPTraces are the per-stage busy intervals of the simulated GPipe
	// schedule, for Gantt-style rendering of the Fig. 1 view.
	PPTraces [][]eventsim.Interval
}

// Fig1 regenerates the utilization view of the validation runs from the
// discrete-event simulators.
func Fig1() (*Fig1Result, error) {
	m := transformer.MinGPT()
	eff := vEff()

	// DP on 8 GPUs: utilization = compute / (compute + all-reduce).
	per := fig2aBatch / 8
	comp := float64(minGPTComputeTime(&m, per, eff.Eff(float64(per))))
	comm := float64(collective.RingAllReduce(8, units.Bits(m.TotalParams()*32), hardware.NVLinkV100()).Time)
	dpUtil := comp / (comp + comm)

	// PP on 4 GPUs with the 1.24B variant.
	pm := transformer.MinGPTPipeline()
	batch := fig2bBatch(4)
	ub := batch / 4
	full := float64(minGPTComputeTime(&pm, ub, eff.Eff(float64(ub)))) / 3
	stageFwd := full / 4
	res, err := pipesim.Run(pipesim.Config{
		Stages:       4,
		Microbatches: 4,
		FwdTime:      eventsim.Time(stageFwd),
		BwdTime:      eventsim.Time(2 * stageFwd),
		KeepTrace:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("validate: fig 1 pipesim: %w", err)
	}
	return &Fig1Result{
		DPUtilization:    dpUtil,
		PPUtilization:    res.Utilization(),
		PPBubbleFraction: res.BubbleFraction(),
		PPTraces:         res.Traces,
	}, nil
}
