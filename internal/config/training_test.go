package config

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"amped/internal/topology"
)

// withTraining swaps the sample document's training section.
func withTraining(t *testing.T, training string) *Document {
	t.Helper()
	s := strings.Replace(sampleDoc, `"training": {"global_batch": 8192, "microbatches": 64}`,
		`"training": `+training, 1)
	doc, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestBackwardFactors pins the fix for the silently-unmappable knobs: a
// recipe setting backward_compute_factor / backward_comm_factor must reach
// the resolved Training verbatim (they used to be dropped, leaving the
// 2x / 1x defaults no matter what the file said).
func TestBackwardFactors(t *testing.T) {
	doc := withTraining(t, `{"global_batch": 8192, "backward_compute_factor": 2.5, "backward_comm_factor": 0.5}`)
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Training.BackwardComputeFactor; got != 2.5 {
		t.Errorf("backward_compute_factor = %v, want 2.5", got)
	}
	if got := est.Training.BackwardCommFactor; got != 0.5 {
		t.Errorf("backward_comm_factor = %v, want 0.5", got)
	}

	// Unset fields keep the model defaults (resolved at evaluation time).
	doc = withTraining(t, `{"global_batch": 8192}`)
	est, err = doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if est.Training.BackwardComputeFactor != 0 || est.Training.BackwardCommFactor != 0 {
		t.Errorf("unset factors = %v/%v, want zero (defaulted downstream)",
			est.Training.BackwardComputeFactor, est.Training.BackwardCommFactor)
	}

	if _, err := withTraining(t, `{"global_batch": 8192, "backward_comm_factor": -1}`).Estimator(); err == nil {
		t.Error("negative backward_comm_factor accepted")
	}
}

// TestTopologySelection pins the fix for the unmappable collective topology.
func TestTopologySelection(t *testing.T) {
	doc := withTraining(t, `{"global_batch": 8192, "topology": {"all_reduce": "tree", "all_to_all": "p2p"}}`)
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	want := topology.Choice{AllReduce: topology.Tree, AllToAll: topology.PointToPoint}
	if est.Training.Topology != want {
		t.Errorf("topology = %+v, want %+v", est.Training.Topology, want)
	}

	// Partial section: the unset class keeps its default.
	doc = withTraining(t, `{"global_batch": 8192, "topology": {"all_reduce": "2d-torus"}}`)
	est, err = doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	want = topology.Choice{AllReduce: topology.Torus2D, AllToAll: topology.PairwiseAllToAll}
	if est.Training.Topology != want {
		t.Errorf("partial topology = %+v, want %+v", est.Training.Topology, want)
	}

	if _, err := withTraining(t, `{"global_batch": 8192, "topology": {"all_reduce": "hypercube"}}`).Estimator(); err == nil {
		t.Error("unknown all_reduce name accepted")
	}
	// "ring" as the all-to-all would build the Choice zero value and
	// silently revert to the default exchange inside the model; the config
	// layer must reject it instead.
	if _, err := withTraining(t, `{"global_batch": 8192, "topology": {"all_to_all": "ring"}}`).Estimator(); err == nil {
		t.Error("ring all_to_all accepted")
	}
}

// TestZeROStage pins the zero_stage routing through ZeROOverheadForStage.
func TestZeROStage(t *testing.T) {
	doc := withTraining(t, `{"global_batch": 8192, "zero_stage": 3}`)
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Training.ZeROOverhead; got != 0.5 {
		t.Errorf("stage 3 overhead = %v, want 0.5", got)
	}

	doc = withTraining(t, `{"global_batch": 8192, "zero_stage": 2}`)
	if est, err = doc.Estimator(); err != nil {
		t.Fatal(err)
	}
	if got := est.Training.ZeROOverhead; got != 0 {
		t.Errorf("stage 2 overhead = %v, want 0", got)
	}

	if _, err := withTraining(t, `{"global_batch": 8192, "zero_stage": 4}`).Estimator(); err == nil {
		t.Error("zero_stage 4 accepted")
	}
	if _, err := withTraining(t, `{"global_batch": 8192, "zero_stage": 3, "zero_overhead": 0.25}`).Estimator(); err == nil {
		t.Error("zero_stage + zero_overhead accepted together")
	}
}

// TestTrainingRoundTrip saves and reloads a document using every new field
// and checks nothing is dropped or mangled on the way through the file.
func TestTrainingRoundTrip(t *testing.T) {
	doc := withTraining(t, `{
		"global_batch": 8192,
		"zero_stage": 3,
		"backward_compute_factor": 2.5,
		"backward_comm_factor": 0.5,
		"topology": {"all_reduce": "tree", "all_to_all": "pairwise"}
	}`)
	path := filepath.Join(t.TempDir(), "point.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Training, doc.Training) {
		t.Errorf("round trip changed training:\n%+v\n%+v", back.Training, doc.Training)
	}
	a, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Training, b.Training) {
		t.Errorf("round trip resolved differently:\n%+v\n%+v", a.Training, b.Training)
	}
}
