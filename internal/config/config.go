// Package config loads and saves AMPeD design points as JSON documents.
// Every knob the model exposes — transformer architecture, accelerator and
// system parameters, parallelism mapping, training recipe — is addressable
// from a config file, so sweeps are reproducible without recompiling.
//
// Model and accelerator sections accept either a preset name or explicit
// fields; quantity-valued fields (bandwidths, frequencies, memory) accept
// either numbers or strings with SI/binary suffixes ("2.4T", "32GiB").
package config

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/precision"
	"amped/internal/transformer"
	"amped/internal/units"
)

// Quantity is a float64 that unmarshals from either a JSON number or a
// suffixed string ("897G", "31.75GiB").
type Quantity float64

// UnmarshalJSON implements json.Unmarshaler.
func (q *Quantity) UnmarshalJSON(data []byte) error {
	var num float64
	if err := json.Unmarshal(data, &num); err == nil {
		*q = Quantity(num)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("config: quantity must be a number or string: %s", data)
	}
	v, err := units.ParseQuantity(s)
	if err != nil {
		return err
	}
	*q = Quantity(v)
	return nil
}

// MarshalJSON renders the plain number.
func (q Quantity) MarshalJSON() ([]byte, error) {
	return json.Marshal(float64(q))
}

// Model selects a transformer architecture: a preset name, optionally with
// field overrides.
type Model struct {
	Preset   string  `json:"preset,omitempty"`
	Name     string  `json:"name,omitempty"`
	Layers   int     `json:"layers,omitempty"`
	Hidden   int     `json:"hidden,omitempty"`
	Heads    int     `json:"heads,omitempty"`
	SeqLen   int     `json:"seq_len,omitempty"`
	Vocab    int     `json:"vocab,omitempty"`
	FFNRatio float64 `json:"ffn_ratio,omitempty"`
	Experts  int     `json:"experts,omitempty"`
	MoEEvery int     `json:"moe_every,omitempty"`
	TopK     int     `json:"top_k,omitempty"`
	// KVHeads enables grouped-query attention; Window enables sliding
	// (local) attention over the given token span.
	KVHeads int `json:"kv_heads,omitempty"`
	Window  int `json:"window,omitempty"`
}

// Resolve produces the domain model, applying overrides on top of the
// preset (zero-valued fields keep the preset's values).
func (m Model) Resolve() (transformer.Model, error) {
	var out transformer.Model
	if m.Preset != "" {
		p, err := transformer.Preset(m.Preset)
		if err != nil {
			return out, err
		}
		out = p
	} else {
		out.FFNRatio = 4 // the universal default when built from scratch
	}
	if m.Name != "" {
		out.Name = m.Name
	}
	override := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	override(&out.Layers, m.Layers)
	override(&out.Hidden, m.Hidden)
	override(&out.Heads, m.Heads)
	override(&out.SeqLen, m.SeqLen)
	override(&out.Vocab, m.Vocab)
	override(&out.Experts, m.Experts)
	override(&out.MoEEvery, m.MoEEvery)
	override(&out.TopK, m.TopK)
	if m.FFNRatio != 0 {
		out.FFNRatio = m.FFNRatio
	}
	if err := out.Validate(); err != nil {
		return transformer.Model{}, err
	}
	if m.KVHeads != 0 || m.Window != 0 {
		return transformer.Variant{KVHeads: m.KVHeads, Window: m.Window}.Apply(out)
	}
	return out, nil
}

// Link configures one interconnect level.
type Link struct {
	Name      string   `json:"name,omitempty"`
	LatencyS  Quantity `json:"latency_s,omitempty"`
	Bandwidth Quantity `json:"bandwidth_bps,omitempty"`
}

func (l Link) resolve() hardware.Link {
	return hardware.Link{
		Name:      l.Name,
		Latency:   units.Seconds(l.LatencyS),
		Bandwidth: units.BitsPerSecond(l.Bandwidth),
	}
}

// Accelerator configures the accelerator design point; a preset name with
// optional overrides, mirroring Table IV's knobs.
type Accelerator struct {
	Preset          string   `json:"preset,omitempty"`
	Name            string   `json:"name,omitempty"`
	FreqHz          Quantity `json:"freq_hz,omitempty"`
	Cores           int      `json:"cores,omitempty"`
	MACUnits        int      `json:"mac_units,omitempty"`
	MACWidth        int      `json:"mac_width,omitempty"`
	MACPrecision    int      `json:"mac_precision_bits,omitempty"`
	NonlinUnits     int      `json:"nonlin_units,omitempty"`
	NonlinWidth     int      `json:"nonlin_width,omitempty"`
	NonlinPrecision int      `json:"nonlin_precision_bits,omitempty"`
	MemoryBytes     Quantity `json:"memory_bytes,omitempty"`
	// MemBW is the device (HBM) memory bandwidth in bits/s, the roofline
	// input; zero keeps the preset's value (or leaves bandwidth unmodeled).
	MemBW     Quantity `json:"mem_bw_bps,omitempty"`
	OffChipBW Quantity `json:"offchip_bw_bps,omitempty"`
	TDPWatts  float64  `json:"tdp_watts,omitempty"`
}

func (a Accelerator) resolve() (hardware.Accelerator, error) {
	var out hardware.Accelerator
	if a.Preset != "" {
		p, err := hardware.AcceleratorPreset(a.Preset)
		if err != nil {
			return out, err
		}
		out = p
	}
	if a.Name != "" {
		out.Name = a.Name
	}
	if a.FreqHz != 0 {
		out.Freq = units.Hertz(a.FreqHz)
	}
	overrideInt := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	overrideInt(&out.Cores, a.Cores)
	overrideInt(&out.MACUnits, a.MACUnits)
	overrideInt(&out.MACWidth, a.MACWidth)
	overrideInt(&out.NonlinUnits, a.NonlinUnits)
	overrideInt(&out.NonlinWidth, a.NonlinWidth)
	if a.MACPrecision != 0 {
		out.MACPrecision = precision.Precision(a.MACPrecision)
	}
	if a.NonlinPrecision != 0 {
		out.NonlinPrecision = precision.Precision(a.NonlinPrecision)
	}
	if a.MemoryBytes != 0 {
		out.Memory = units.Bytes(a.MemoryBytes)
	}
	if a.MemBW != 0 {
		out.MemBW = units.BitsPerSecond(a.MemBW)
	}
	if a.OffChipBW != 0 {
		out.OffChipBW = units.BitsPerSecond(a.OffChipBW)
	}
	if a.TDPWatts != 0 {
		out.TDP = a.TDPWatts
	}
	if err := out.Validate(); err != nil {
		return hardware.Accelerator{}, err
	}
	return out, nil
}

// System configures the machine.
type System struct {
	Name          string      `json:"name,omitempty"`
	Accelerator   Accelerator `json:"accelerator"`
	Nodes         int         `json:"nodes"`
	AccelsPerNode int         `json:"accels_per_node"`
	Intra         Link        `json:"intra"`
	Inter         Link        `json:"inter"`
	NICsPerNode   int         `json:"nics_per_node,omitempty"`
	IdleFraction  float64     `json:"idle_power_fraction,omitempty"`
	// Oversubscription tapers the inter-node fabric (>= 1; 0 = none).
	Oversubscription float64 `json:"oversubscription,omitempty"`
}

// Resolve produces the domain system.
func (s System) Resolve() (hardware.System, error) {
	accel, err := s.Accelerator.resolve()
	if err != nil {
		return hardware.System{}, err
	}
	nics := s.NICsPerNode
	if nics == 0 {
		nics = s.AccelsPerNode // one NIC per accelerator by default
	}
	out := hardware.System{
		Name:              s.Name,
		Accel:             accel,
		Nodes:             s.Nodes,
		AccelsPerNode:     s.AccelsPerNode,
		Intra:             s.Intra.resolve(),
		Inter:             s.Inter.resolve(),
		NICsPerNode:       nics,
		IdlePowerFraction: s.IdleFraction,
		Oversubscription:  s.Oversubscription,
	}
	if err := out.Validate(); err != nil {
		return hardware.System{}, err
	}
	return out, nil
}

// Mapping configures the parallelism degrees.
type Mapping struct {
	TPIntra int `json:"tp_intra,omitempty"`
	TPInter int `json:"tp_inter,omitempty"`
	PPIntra int `json:"pp_intra,omitempty"`
	PPInter int `json:"pp_inter,omitempty"`
	DPIntra int `json:"dp_intra,omitempty"`
	DPInter int `json:"dp_inter,omitempty"`
	CPIntra int `json:"cp_intra,omitempty"`
	CPInter int `json:"cp_inter,omitempty"`
	// VPP is the virtual-pipeline chunk count per stage (interleaved 1F1B);
	// 0 or 1 means no interleaving.
	VPP              int  `json:"vpp,omitempty"`
	SequenceParallel bool `json:"sequence_parallel,omitempty"`
	ExpertParallel   bool `json:"expert_parallel,omitempty"`
}

// Resolve produces the domain mapping.
func (m Mapping) Resolve() parallel.Mapping {
	return parallel.Mapping{
		TPIntra: m.TPIntra, TPInter: m.TPInter,
		PPIntra: m.PPIntra, PPInter: m.PPInter,
		DPIntra: m.DPIntra, DPInter: m.DPInter,
		CPIntra: m.CPIntra, CPInter: m.CPInter,
		VPP:              m.VPP,
		SequenceParallel: m.SequenceParallel,
		ExpertParallel:   m.ExpertParallel,
	}
}

// Training configures the recipe.
type Training struct {
	GlobalBatch  int     `json:"global_batch"`
	Microbatches int     `json:"microbatches,omitempty"`
	NumBatches   int     `json:"num_batches,omitempty"`
	BubbleRatio  float64 `json:"bubble_ratio,omitempty"`
	ZeROOverhead float64 `json:"zero_overhead,omitempty"`
	// ZeROStage derives the overhead from the ZeRO stage (0–3) via
	// model.ZeROOverheadForStage; mutually exclusive with ZeROOverhead.
	ZeROStage   int     `json:"zero_stage,omitempty"`
	CommOverlap float64 `json:"comm_overlap,omitempty"`
	// Roofline prices every sublayer as max(compute, bytes/mem_bw); it needs
	// the accelerator's mem_bw_bps and falls back to pure-FLOP pricing when
	// that is zero.
	Roofline bool `json:"roofline,omitempty"`
	// Overlap is the fraction of the gradient all-reduce eligible to hide
	// under backward compute (bucketed overlap, 0..1).
	Overlap float64 `json:"overlap,omitempty"`
	// BackwardComputeFactor and BackwardCommFactor scale forward compute
	// and communication to their backward-pass counterparts (0 keeps the
	// model defaults of 2 and 1).
	BackwardComputeFactor float64 `json:"backward_compute_factor,omitempty"`
	BackwardCommFactor    float64 `json:"backward_comm_factor,omitempty"`
	ParamBits             int     `json:"param_bits,omitempty"`
	ActBits               int     `json:"act_bits,omitempty"`
	NonlinBits            int     `json:"nonlin_bits,omitempty"`
	GradBits              int     `json:"grad_bits,omitempty"`
	// Topology selects the collective algorithms; nil keeps the defaults
	// (ring all-reduce, pairwise all-to-all).
	Topology     *Topology `json:"topology,omitempty"`
	FixedEff     float64   `json:"fixed_efficiency,omitempty"`
	EffAsymptote float64   `json:"eff_asymptote,omitempty"`
	EffHalfPoint float64   `json:"eff_half_point,omitempty"`
	EffFloor     float64   `json:"eff_floor,omitempty"`
	IncludeEmbed bool      `json:"include_embedding,omitempty"`
}

// Topology names the collective algorithm per collective class. Accepted
// names are those of topology.ParseKind ("ring", "tree", "pairwise",
// "point-to-point", "2d-torus"); an empty field keeps that class's default.
type Topology struct {
	AllReduce string `json:"all_reduce,omitempty"`
	AllToAll  string `json:"all_to_all,omitempty"`
}

// Reliability configures the failure-aware goodput model (internal/faults):
// per-component MTBFs that compose into a whole-job failure rate, and the
// checkpoint/restart costs that turn it into expected-time inflation. An
// absent section keeps the legacy healthy-cluster behavior.
type Reliability struct {
	// AccelMTBFSeconds, NodeMTBFSeconds and LinkMTBFSeconds are the mean
	// time between failures of one accelerator, one node and one fabric
	// link. Zero disables that component class.
	AccelMTBFSeconds Quantity `json:"accel_mtbf_s,omitempty"`
	NodeMTBFSeconds  Quantity `json:"node_mtbf_s,omitempty"`
	LinkMTBFSeconds  Quantity `json:"link_mtbf_s,omitempty"`
	// CheckpointBW is the per-worker checkpoint write bandwidth in bytes/s.
	// Required whenever any MTBF is set.
	CheckpointBW Quantity `json:"checkpoint_bw_bytes_per_s,omitempty"`
	// RestartSeconds is the fixed recovery cost per failure.
	RestartSeconds Quantity `json:"restart_s,omitempty"`
	// CheckpointIntervalSeconds forces the checkpoint cadence; zero derives
	// the Young/Daly optimum per design point.
	CheckpointIntervalSeconds Quantity `json:"checkpoint_interval_s,omitempty"`
	// Optimizer names the optimizer whose state the checkpoint carries
	// ("sgd", "sgd+momentum", "adam"). Empty defaults to adam — the
	// standard mixed-precision recipe at 12 bytes per parameter.
	Optimizer string `json:"optimizer,omitempty"`
}

// Inference configures the serving workload, selected by
// workload: "inference". The training section still supplies the precision
// operands, topology, roofline switch and efficiency curve; its
// global_batch is ignored (the serving batch lives here).
type Inference struct {
	// PromptLen is the prompt length in tokens (the prefill pass).
	PromptLen int `json:"prompt_len"`
	// GenTokens is the number of tokens generated per request.
	GenTokens int `json:"gen_tokens"`
	// GlobalBatch is the concurrent-sequence count across the fleet; it
	// must divide the data-parallel degree.
	GlobalBatch int `json:"global_batch"`
	// Occupancy, when set, wraps the efficiency curve in continuous
	// batching: the kernel batch the accelerator sees is only this fraction
	// of the admitted sequences (scheduler gaps, ragged generation).
	Occupancy float64 `json:"occupancy,omitempty"`
}

// Resolve produces the domain workload.
func (i *Inference) Resolve() model.Inference {
	return model.Inference{PromptLen: i.PromptLen, GenTokens: i.GenTokens}
}

// Document is a complete design point.
type Document struct {
	// Workload selects what the point evaluates: "" or "training" runs the
	// paper's training model; "inference" prices the serving workload in the
	// inference section instead.
	Workload    string       `json:"workload,omitempty"`
	Model       Model        `json:"model"`
	System      System       `json:"system"`
	Mapping     Mapping      `json:"mapping"`
	Training    Training     `json:"training"`
	Inference   *Inference   `json:"inference,omitempty"`
	Reliability *Reliability `json:"reliability,omitempty"`
}

// IsInference reports whether the document selects the serving workload.
func (d *Document) IsInference() bool { return d.Workload == "inference" }

// Load reads and parses a document from path.
func Load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse parses a document from JSON bytes, rejecting unknown fields so
// typos surface as errors rather than silently-ignored knobs.
func Parse(data []byte) (*Document, error) {
	var doc Document
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	switch doc.Workload {
	case "", "training":
		if doc.Training.GlobalBatch <= 0 {
			return nil, errors.New("config: training.global_batch must be positive")
		}
	case "inference":
		if doc.Inference == nil {
			return nil, errors.New("config: workload \"inference\" requires an inference section")
		}
		if doc.Inference.GlobalBatch <= 0 {
			return nil, errors.New("config: inference.global_batch must be positive")
		}
	default:
		return nil, fmt.Errorf("config: unknown workload %q (want \"training\" or \"inference\")", doc.Workload)
	}
	return &doc, nil
}

// Save writes the document as indented JSON.
func Save(path string, doc *Document) error {
	if doc == nil {
		return errors.New("config: nil document")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
