package config

import "testing"

// FuzzParse checks that arbitrary bytes never panic the config parser, and
// that any document it accepts either resolves into a runnable estimator
// or fails with an error — never a panic or a nil result.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleDoc))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"training":{"global_batch":1}}`))
	f.Add([]byte(`{"model":{"preset":"mingpt"},"training":{"global_batch":-3}}`))
	f.Add([]byte(`{"model":{"preset":"mingpt"},"training":{"global_batch":8},
		"reliability":{"accel_mtbf_s":"5M","checkpoint_bw_bytes_per_s":"2G","restart_s":300}}`))
	f.Add([]byte(`{"reliability":{"accel_mtbf_s":"5M"}}`))
	f.Add([]byte(`{"reliability":{"checkpoint_interval_s":-1}}`))
	f.Add([]byte(`{"model":{"preset":"mingpt"},"training":{"global_batch":8,"roofline":true,"overlap":0.5}}`))
	f.Add([]byte(`{"system":{"accelerator":{"preset":"a100","mem_bw_bps":"16.3T"}},"training":{"global_batch":8}}`))
	f.Add([]byte(`{"mapping":{"cp_intra":2,"cp_inter":2,"vpp":2,"sequence_parallel":true},"training":{"global_batch":8}}`))
	f.Add([]byte(`{"mapping":{"cp_inter":-1},"training":{"global_batch":8,"overlap":2}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return
		}
		if doc == nil {
			t.Fatal("Parse returned nil document without error")
		}
		est, err := doc.Estimator()
		if err != nil {
			return
		}
		if est == nil {
			t.Fatal("Estimator returned nil without error")
		}
		if _, err := est.Evaluate(); err == nil {
			// A fully-valid fuzzed document must produce a finite result;
			// Evaluate already guards non-finite internally.
			return
		}
	})
}
