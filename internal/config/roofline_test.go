package config

import (
	"encoding/json"
	"testing"
)

// rooflineDoc engages every new knob at once: the accelerator bandwidth
// override, roofline pricing, gradient-comm overlap and the CP/VPP/SP
// mapping dimensions.
const rooflineDoc = `{
  "model": {"preset": "megatron-145b"},
  "system": {
    "name": "cs1",
    "accelerator": {"preset": "a100", "mem_bw_bps": "16.3T"},
    "nodes": 128,
    "accels_per_node": 8,
    "intra": {"name": "nvlink", "latency_s": 2e-6, "bandwidth_bps": "2.4T"},
    "inter": {"name": "hdr", "latency_s": 5e-6, "bandwidth_bps": "200G"}
  },
  "mapping": {"tp_intra": 8, "pp_inter": 2, "dp_inter": 32, "cp_inter": 2,
              "vpp": 2, "sequence_parallel": true},
  "training": {"global_batch": 8192, "microbatches": 64,
               "roofline": true, "overlap": 0.9}
}`

// TestParseRooflineAndNewDimensions checks the new schema fields resolve
// onto the domain types and the document evaluates end to end.
func TestParseRooflineAndNewDimensions(t *testing.T) {
	doc, err := Parse([]byte(rooflineDoc))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.System.Accel.MemBW); got != 16.3e12 {
		t.Errorf("mem_bw_bps = %v, want 16.3e12", got)
	}
	if !est.Training.Roofline {
		t.Error("roofline flag not resolved")
	}
	if est.Training.GradOverlap != 0.9 {
		t.Errorf("overlap = %v, want 0.9", est.Training.GradOverlap)
	}
	mp := est.Mapping
	if mp.CP() != 2 || mp.VPP != 2 || !mp.SequenceParallel {
		t.Errorf("mapping = %v, want CP=2 VPP=2 +SP", mp)
	}
	b, err := est.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if b.PerBatch() <= 0 {
		t.Error("non-positive per-batch time")
	}
	if b.CPComm <= 0 {
		t.Error("context parallelism produced no CP communication time")
	}
	// Round-trip: the document re-marshals and re-parses to the same
	// resolved estimator inputs.
	doc2, err := Parse(mustMarshal(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	if doc2.Mapping != doc.Mapping || doc2.Training != doc.Training {
		t.Error("new fields did not survive a marshal round-trip")
	}

	// Out-of-range overlap is rejected at resolution, not evaluation.
	bad, err := Parse([]byte(`{"model":{"preset":"mingpt"},"training":{"global_batch":8,"overlap":1.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Estimator(); err == nil {
		t.Error("overlap 1.5 accepted")
	}
}

func mustMarshal(t *testing.T, doc *Document) []byte {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
