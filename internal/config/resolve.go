package config

import (
	"errors"
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/faults"
	"amped/internal/hardware"
	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/precision"
	"amped/internal/topology"
	"amped/internal/transformer"
	"amped/internal/units"
)

// resolveTraining maps the JSON recipe onto the model's Training knobs.
func (t Training) resolveTraining() (model.Training, error) {
	operands := precision.Mixed16()
	overrideBits := func(dst *precision.Precision, v int) {
		if v != 0 {
			*dst = precision.Precision(v)
		}
	}
	overrideBits(&operands.Param, t.ParamBits)
	overrideBits(&operands.Act, t.ActBits)
	overrideBits(&operands.Nonlin, t.NonlinBits)
	overrideBits(&operands.Grad, t.GradBits)
	zero := t.ZeROOverhead
	if t.ZeROStage != 0 {
		if t.ZeROOverhead != 0 {
			return model.Training{}, fmt.Errorf(
				"config: zero_stage %d and zero_overhead %g are mutually exclusive; set one",
				t.ZeROStage, t.ZeROOverhead)
		}
		v, err := model.ZeROOverheadForStage(t.ZeROStage)
		if err != nil {
			return model.Training{}, fmt.Errorf("config: %w", err)
		}
		zero = v
	}
	choice, err := t.Topology.resolve()
	if err != nil {
		return model.Training{}, err
	}
	out := model.Training{
		Batch: parallel.Batch{
			Global:       t.GlobalBatch,
			Microbatches: t.Microbatches,
		},
		NumBatches:            t.NumBatches,
		BubbleRatio:           t.BubbleRatio,
		ZeROOverhead:          zero,
		CommOverlap:           t.CommOverlap,
		Roofline:              t.Roofline,
		GradOverlap:           t.Overlap,
		BackwardComputeFactor: t.BackwardComputeFactor,
		BackwardCommFactor:    t.BackwardCommFactor,
		Operands:              operands,
		Topology:              choice,
		IncludeEmbedding:      t.IncludeEmbed,
	}
	if err := out.Validate(); err != nil {
		return model.Training{}, err
	}
	return out, nil
}

// resolve maps the JSON reliability section onto a faults.Spec. A nil
// section disables the failure model; an unset optimizer defaults to Adam's
// 12 bytes of state per parameter.
func (r *Reliability) resolve() (*faults.Spec, error) {
	if r == nil {
		return nil, nil
	}
	opt := memkit.Adam
	if r.Optimizer != "" {
		o, err := memkit.ParseOptimizer(r.Optimizer)
		if err != nil {
			return nil, fmt.Errorf("config: reliability.optimizer: %w", err)
		}
		opt = o
	}
	spec := &faults.Spec{
		AccelMTBF:              units.Seconds(r.AccelMTBFSeconds),
		NodeMTBF:               units.Seconds(r.NodeMTBFSeconds),
		LinkMTBF:               units.Seconds(r.LinkMTBFSeconds),
		CheckpointBW:           float64(r.CheckpointBW),
		RestartTime:            units.Seconds(r.RestartSeconds),
		CheckpointInterval:     units.Seconds(r.CheckpointIntervalSeconds),
		OptimizerBytesPerParam: opt.StateBytesPerParam(),
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("config: reliability: %w", err)
	}
	return spec, nil
}

// resolve maps the JSON topology names onto a topology.Choice. A nil
// section or empty field keeps the paper's defaults (ring all-reduce,
// pairwise all-to-all). "ring" is rejected as an all-to-all: it names an
// all-reduce algorithm, and the resulting Choice would collide with the
// unset zero value and silently revert to the default exchange.
func (t *Topology) resolve() (topology.Choice, error) {
	choice := topology.DefaultChoice()
	if t == nil {
		return choice, nil
	}
	if t.AllReduce != "" {
		k, err := topology.ParseKind(t.AllReduce)
		if err != nil {
			return topology.Choice{}, fmt.Errorf("config: topology.all_reduce: %w", err)
		}
		choice.AllReduce = k
	}
	if t.AllToAll != "" {
		k, err := topology.ParseKind(t.AllToAll)
		if err != nil {
			return topology.Choice{}, fmt.Errorf("config: topology.all_to_all: %w", err)
		}
		if k == topology.Ring {
			return topology.Choice{}, fmt.Errorf(
				"config: topology.all_to_all %q is not an all-to-all exchange; use pairwise, point-to-point or 2d-torus", t.AllToAll)
		}
		choice.AllToAll = k
	}
	return choice, nil
}

// resolveEff builds the efficiency model the recipe selects: a fixed value
// takes precedence; otherwise explicit saturating parameters; otherwise the
// library default.
func (t Training) resolveEff() (efficiency.Model, error) {
	if t.FixedEff != 0 {
		if t.FixedEff < 0 || t.FixedEff > 1 {
			return nil, fmt.Errorf("config: fixed_efficiency %v outside (0,1]", t.FixedEff)
		}
		return efficiency.Fixed(t.FixedEff), nil
	}
	if t.EffAsymptote != 0 || t.EffHalfPoint != 0 {
		s := efficiency.Saturating{A: t.EffAsymptote, B: t.EffHalfPoint, Floor: t.EffFloor}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	}
	return efficiency.Default(), nil
}

// Components is the mapping-independent part of a resolved document: the
// exact tuple model.Compile consumes. The serving layer resolves requests
// through it so one compiled session (keyed on model.ScenarioKey over these
// fields) is shared by every request and sweep naming the same scenario.
type Components struct {
	Model    transformer.Model
	System   hardware.System
	Training model.Training
	Eff      efficiency.Model
}

// Components resolves the document's model, system, training recipe and
// efficiency model — everything except the parallelism mapping. Unlike
// Estimator it does not require the mapping section, so sweep-style
// requests (which enumerate mappings) reuse the same schema.
func (d *Document) Components() (*Components, error) {
	m, err := d.Model.Resolve()
	if err != nil {
		return nil, err
	}
	sys, err := d.System.Resolve()
	if err != nil {
		return nil, err
	}
	tr, err := d.Training.resolveTraining()
	if err != nil {
		return nil, err
	}
	rel, err := d.Reliability.resolve()
	if err != nil {
		return nil, err
	}
	tr.Reliability = rel
	eff, err := d.Training.resolveEff()
	if err != nil {
		return nil, err
	}
	return &Components{Model: m, System: sys, Training: tr, Eff: eff}, nil
}

// Key returns the canonical scenario cache key of the resolved components.
func (c *Components) Key() string {
	return model.ScenarioKey(&c.Model, &c.System, c.Training, c.Eff)
}

// Compile compiles the components into an evaluation session.
func (c *Components) Compile() (*model.Session, error) {
	return model.Compile(&c.Model, &c.System, c.Training, c.Eff)
}

// InferenceKey returns the canonical cache key of the components plus the
// serving workload.
func (c *Components) InferenceKey(inf model.Inference) string {
	return model.InferenceScenarioKey(&c.Model, &c.System, c.Training, c.Eff, inf)
}

// CompileInference compiles the components into a serving session for the
// given workload.
func (c *Components) CompileInference(inf model.Inference) (*model.InferenceSession, error) {
	return model.CompileInference(&c.Model, &c.System, c.Training, c.Eff, inf)
}

// InferenceScenario resolves an inference-workload document into the
// serving tuple: the mapping-independent components (with the efficiency
// curve wrapped in continuous batching when occupancy is set), the
// workload, and the concurrent-sequence count.
func (d *Document) InferenceScenario() (*Components, model.Inference, int, error) {
	if !d.IsInference() || d.Inference == nil {
		return nil, model.Inference{}, 0, errors.New("config: document does not select workload \"inference\"")
	}
	comp, err := d.Components()
	if err != nil {
		return nil, model.Inference{}, 0, err
	}
	if occ := d.Inference.Occupancy; occ != 0 {
		cb := efficiency.ContinuousBatching{Base: comp.Eff, Occupancy: occ}
		if err := cb.Validate(); err != nil {
			return nil, model.Inference{}, 0, fmt.Errorf("config: %w", err)
		}
		comp.Eff = cb
	}
	return comp, d.Inference.Resolve(), d.Inference.GlobalBatch, nil
}

// Estimator resolves the whole document into a ready-to-run estimator.
func (d *Document) Estimator() (*model.Estimator, error) {
	comp, err := d.Components()
	if err != nil {
		return nil, err
	}
	est := &model.Estimator{
		Model:    &comp.Model,
		System:   &comp.System,
		Mapping:  d.Mapping.Resolve(),
		Training: comp.Training,
		Eff:      comp.Eff,
	}
	if err := est.Validate(); err != nil {
		return nil, err
	}
	return est, nil
}
