package config

import (
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/precision"
)

// resolveTraining maps the JSON recipe onto the model's Training knobs.
func (t Training) resolveTraining() (model.Training, error) {
	operands := precision.Mixed16()
	overrideBits := func(dst *precision.Precision, v int) {
		if v != 0 {
			*dst = precision.Precision(v)
		}
	}
	overrideBits(&operands.Param, t.ParamBits)
	overrideBits(&operands.Act, t.ActBits)
	overrideBits(&operands.Nonlin, t.NonlinBits)
	overrideBits(&operands.Grad, t.GradBits)
	out := model.Training{
		Batch: parallel.Batch{
			Global:       t.GlobalBatch,
			Microbatches: t.Microbatches,
		},
		NumBatches:       t.NumBatches,
		BubbleRatio:      t.BubbleRatio,
		ZeROOverhead:     t.ZeROOverhead,
		CommOverlap:      t.CommOverlap,
		Operands:         operands,
		IncludeEmbedding: t.IncludeEmbed,
	}
	if err := out.Validate(); err != nil {
		return model.Training{}, err
	}
	return out, nil
}

// resolveEff builds the efficiency model the recipe selects: a fixed value
// takes precedence; otherwise explicit saturating parameters; otherwise the
// library default.
func (t Training) resolveEff() (efficiency.Model, error) {
	if t.FixedEff != 0 {
		if t.FixedEff < 0 || t.FixedEff > 1 {
			return nil, fmt.Errorf("config: fixed_efficiency %v outside (0,1]", t.FixedEff)
		}
		return efficiency.Fixed(t.FixedEff), nil
	}
	if t.EffAsymptote != 0 || t.EffHalfPoint != 0 {
		s := efficiency.Saturating{A: t.EffAsymptote, B: t.EffHalfPoint, Floor: t.EffFloor}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	}
	return efficiency.Default(), nil
}

// Estimator resolves the whole document into a ready-to-run estimator.
func (d *Document) Estimator() (*model.Estimator, error) {
	m, err := d.Model.Resolve()
	if err != nil {
		return nil, err
	}
	sys, err := d.System.Resolve()
	if err != nil {
		return nil, err
	}
	tr, err := d.Training.resolveTraining()
	if err != nil {
		return nil, err
	}
	eff, err := d.Training.resolveEff()
	if err != nil {
		return nil, err
	}
	est := &model.Estimator{
		Model:    &m,
		System:   &sys,
		Mapping:  d.Mapping.Resolve(),
		Training: tr,
		Eff:      eff,
	}
	if err := est.Validate(); err != nil {
		return nil, err
	}
	return est, nil
}
