package config

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"amped/internal/transformer"
)

const sampleDoc = `{
  "model": {"preset": "megatron-145b"},
  "system": {
    "name": "cs1",
    "accelerator": {"preset": "a100"},
    "nodes": 128,
    "accels_per_node": 8,
    "intra": {"name": "nvlink", "latency_s": 2e-6, "bandwidth_bps": "2.4T"},
    "inter": {"name": "hdr", "latency_s": 5e-6, "bandwidth_bps": "200G"}
  },
  "mapping": {"tp_intra": 8, "pp_inter": 2, "dp_inter": 64},
  "training": {"global_batch": 8192, "microbatches": 64}
}`

func TestParseAndResolve(t *testing.T) {
	doc, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if est.Model.Name != "Megatron 145B" {
		t.Errorf("model = %q", est.Model.Name)
	}
	if est.System.TotalAccelerators() != 1024 {
		t.Errorf("accelerators = %d", est.System.TotalAccelerators())
	}
	if got := float64(est.System.Intra.Bandwidth); got != 2.4e12 {
		t.Errorf("intra bandwidth = %v", got)
	}
	if est.Mapping.TP() != 8 || est.Mapping.PP() != 2 || est.Mapping.DP() != 64 {
		t.Errorf("mapping = %v", est.Mapping)
	}
	b, err := est.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if b.PerBatch() <= 0 {
		t.Error("non-positive per-batch time")
	}
}

func TestComponentsResolution(t *testing.T) {
	doc, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := doc.Components()
	if err != nil {
		t.Fatal(err)
	}
	if comp.Model.Name != "Megatron 145B" || comp.System.TotalAccelerators() != 1024 {
		t.Errorf("components resolved wrong: %q, %d accels",
			comp.Model.Name, comp.System.TotalAccelerators())
	}
	if comp.Eff == nil {
		t.Error("nil efficiency model")
	}
	sess, err := comp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Key() != comp.Key() {
		t.Errorf("components key %q != compiled session key %q", comp.Key(), sess.Key())
	}
	// Documents naming the same scenario share a key — the premise of the
	// serving layer's session cache — and the batch does not split it.
	other := strings.Replace(sampleDoc, `"global_batch": 8192`, `"global_batch": 4096`, 1)
	doc2, err := Parse([]byte(other))
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := doc2.Components()
	if err != nil {
		t.Fatal(err)
	}
	if comp2.Key() != comp.Key() {
		t.Errorf("batch size leaked into the scenario key")
	}
}

func TestQuantityForms(t *testing.T) {
	var q Quantity
	if err := q.UnmarshalJSON([]byte(`123.5`)); err != nil || q != 123.5 {
		t.Errorf("number quantity = %v, %v", q, err)
	}
	if err := q.UnmarshalJSON([]byte(`"2.4T"`)); err != nil || q != 2.4e12 {
		t.Errorf("string quantity = %v, %v", q, err)
	}
	if err := q.UnmarshalJSON([]byte(`"32GiB"`)); err != nil || math.Abs(float64(q)-32*(1<<30)) > 1 {
		t.Errorf("binary quantity = %v, %v", q, err)
	}
	if err := q.UnmarshalJSON([]byte(`true`)); err == nil {
		t.Error("bool quantity accepted")
	}
	if err := q.UnmarshalJSON([]byte(`"abc"`)); err == nil {
		t.Error("junk quantity accepted")
	}
	out, err := Quantity(5).MarshalJSON()
	if err != nil || string(out) != "5" {
		t.Errorf("MarshalJSON = %s, %v", out, err)
	}
}

func TestModelOverrides(t *testing.T) {
	m := Model{Preset: "mingpt", Layers: 24, Name: "minGPT-deep"}
	r, err := m.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Layers != 24 || r.Hidden != 768 || r.Name != "minGPT-deep" {
		t.Errorf("resolved = %+v", r)
	}
	// From-scratch definition without preset.
	scratch := Model{Name: "tiny", Layers: 2, Hidden: 64, Heads: 4, SeqLen: 32, Vocab: 100}
	r2, err := scratch.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r2.FFNRatio != 4 {
		t.Errorf("scratch FFN ratio = %v, want default 4", r2.FFNRatio)
	}
	if _, err := (Model{Preset: "nope"}).Resolve(); err == nil {
		t.Error("bad preset accepted")
	}
	if _, err := (Model{Layers: 1}).Resolve(); err == nil {
		t.Error("incomplete scratch model accepted")
	}
}

func TestAcceleratorOverrides(t *testing.T) {
	doc, err := Parse([]byte(strings.Replace(sampleDoc,
		`{"preset": "a100"}`,
		`{"preset": "a100", "freq_hz": "1.5G", "cores": 120}`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(est.System.Accel.Freq); got != 1.5e9 {
		t.Errorf("freq = %v", got)
	}
	if est.System.Accel.Cores != 120 {
		t.Errorf("cores = %d", est.System.Accel.Cores)
	}
	// Untouched fields keep the preset.
	if est.System.Accel.MACWidth != 256 {
		t.Errorf("mac width = %d", est.System.Accel.MACWidth)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	bad := strings.Replace(sampleDoc, `"global_batch": 8192`, `"global_batch": 8192, "typo_knob": 1`, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestMissingBatchRejected(t *testing.T) {
	bad := strings.Replace(sampleDoc, `"global_batch": 8192, `, ``, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("missing global batch accepted")
	}
}

func TestEfficiencySelection(t *testing.T) {
	withEff := func(frag string) (*Document, error) {
		s := strings.Replace(sampleDoc, `"microbatches": 64`, `"microbatches": 64, `+frag, 1)
		return Parse([]byte(s))
	}
	doc, err := withEff(`"fixed_efficiency": 0.55`)
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Eff.Eff(1); got != 0.55 {
		t.Errorf("fixed eff = %v", got)
	}
	doc, err = withEff(`"eff_asymptote": 0.9, "eff_half_point": 28, "eff_floor": 0.25`)
	if err != nil {
		t.Fatal(err)
	}
	est, err = doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Eff.Eff(28); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("saturating eff(28) = %v", got)
	}
	if doc, err = withEff(`"fixed_efficiency": 1.5`); err == nil {
		if _, err := doc.Estimator(); err == nil {
			t.Error("fixed eff > 1 accepted")
		}
	}
	if doc, err = withEff(`"eff_asymptote": 2, "eff_half_point": 28`); err == nil {
		if _, err := doc.Estimator(); err == nil {
			t.Error("asymptote > 1 accepted")
		}
	}
}

func TestPrecisionOverrides(t *testing.T) {
	s := strings.Replace(sampleDoc, `"microbatches": 64`,
		`"microbatches": 64, "param_bits": 8, "act_bits": 8, "grad_bits": 16`, 1)
	doc, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	op := est.Training.Operands
	if op.Param != 8 || op.Act != 8 || op.Grad != 16 {
		t.Errorf("operands = %+v", op)
	}
	if op.Nonlin != 32 {
		t.Errorf("nonlin kept default fp32, got %v", op.Nonlin)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	doc, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "point.json")
	if err := Save(path, doc); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mapping != doc.Mapping || back.Training != doc.Training {
		t.Error("round trip changed mapping/training")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := Save(path, nil); err == nil {
		t.Error("nil doc saved")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("truncated JSON accepted")
	}
}

func TestEstimatorValidationSurface(t *testing.T) {
	// A mapping that does not tile the system must fail at Estimator().
	s := strings.Replace(sampleDoc, `"tp_intra": 8, "pp_inter": 2, "dp_inter": 64`,
		`"tp_intra": 4, "dp_inter": 64`, 1)
	doc, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Estimator(); err == nil {
		t.Error("non-tiling mapping accepted")
	}
}

func TestAttentionVariantConfig(t *testing.T) {
	s := strings.Replace(sampleDoc, `{"preset": "megatron-145b"}`,
		`{"preset": "megatron-145b", "kv_heads": 8, "window": 1024}`, 1)
	doc, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(est.Model.Name, "GQA8") || !strings.Contains(est.Model.Name, "SW1024") {
		t.Errorf("variant not applied: %q", est.Model.Name)
	}
	base, _ := transformer.Preset("megatron-145b")
	if est.Model.LayerParams(0) >= base.LayerParams(0) {
		t.Error("GQA config did not shrink params")
	}
	// Invalid variant surfaces at Resolve.
	bad := strings.Replace(sampleDoc, `{"preset": "megatron-145b"}`,
		`{"preset": "megatron-145b", "kv_heads": 7}`, 1)
	doc, err = Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Estimator(); err == nil {
		t.Error("non-divisor KV heads accepted")
	}
}

func TestCommOverlapConfig(t *testing.T) {
	s := strings.Replace(sampleDoc, `"microbatches": 64`,
		`"microbatches": 64, "comm_overlap": 0.8`, 1)
	doc, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if est.Training.CommOverlap != 0.8 {
		t.Errorf("comm overlap = %v", est.Training.CommOverlap)
	}
	bad := strings.Replace(sampleDoc, `"microbatches": 64`,
		`"microbatches": 64, "comm_overlap": 1.5`, 1)
	doc, err = Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Estimator(); err == nil {
		t.Error("overlap > 1 accepted")
	}
}

func TestOversubscriptionConfig(t *testing.T) {
	s := strings.Replace(sampleDoc, `"nodes": 128,`, `"nodes": 128, "oversubscription": 2,`, 1)
	doc, err := Parse([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	est, err := doc.Estimator()
	if err != nil {
		t.Fatal(err)
	}
	if est.System.Oversubscription != 2 {
		t.Errorf("oversubscription = %v", est.System.Oversubscription)
	}
	half := float64(est.System.Inter.Bandwidth) / 2
	if got := float64(est.System.EffectiveInterBW()); math.Abs(got-half) > 1e-6*half {
		t.Errorf("effective BW = %v, want %v", got, half)
	}
}
