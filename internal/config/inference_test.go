package config

import (
	"strings"
	"testing"

	"amped/internal/efficiency"
)

// inferenceDoc exercises the serving workload end to end: a GQA preset,
// roofline pricing (so KV reads are priced), and a continuous-batching
// occupancy wrap over the efficiency curve.
const inferenceDoc = `{
  "workload": "inference",
  "model": {"preset": "llama-70b"},
  "system": {
    "name": "serving-pod",
    "accelerator": {"preset": "a100", "mem_bw_bps": "2T"},
    "nodes": 2,
    "accels_per_node": 8,
    "intra": {"name": "nvlink", "latency_s": 2e-6, "bandwidth_bps": "2.4T"},
    "inter": {"name": "hdr", "latency_s": 5e-6, "bandwidth_bps": "200G"}
  },
  "mapping": {"tp_intra": 8, "dp_inter": 2},
  "training": {"global_batch": 1, "roofline": true},
  "inference": {"prompt_len": 1024, "gen_tokens": 256, "global_batch": 16,
                "occupancy": 0.85}
}`

func TestInferenceWorkloadResolution(t *testing.T) {
	doc, err := Parse([]byte(inferenceDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !doc.IsInference() {
		t.Fatal("workload discriminator not parsed")
	}
	comp, inf, batch, err := doc.InferenceScenario()
	if err != nil {
		t.Fatal(err)
	}
	if inf.PromptLen != 1024 || inf.GenTokens != 256 || batch != 16 {
		t.Fatalf("workload = %+v batch %d, want 1024/256 at 16", inf, batch)
	}
	if _, ok := comp.Eff.(efficiency.ContinuousBatching); !ok {
		t.Errorf("occupancy did not wrap the efficiency curve: %T", comp.Eff)
	}
	sess, err := comp.CompileInference(inf)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Key() != comp.InferenceKey(inf) {
		t.Errorf("components key %q != compiled session key %q",
			comp.InferenceKey(inf), sess.Key())
	}
	b, err := sess.Evaluate(doc.Mapping.Resolve(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if b.TTFT() <= 0 || b.PerToken() <= 0 || b.TokensPerSecond() <= 0 {
		t.Errorf("degenerate serving point: TTFT %v, per-token %v", b.TTFT(), b.PerToken())
	}
	if b.KVBytesPerSeq <= 0 {
		t.Error("GQA preset produced no KV-cache footprint")
	}
}

// TestInferenceWorkloadParseRules pins the schema gate: inference docs may
// omit training.global_batch but must carry an inference section, training
// docs must not lose the batch requirement, and typo'd workloads fail.
func TestInferenceWorkloadParseRules(t *testing.T) {
	// training.global_batch is not required for inference docs.
	relaxed := strings.Replace(inferenceDoc, `"global_batch": 1, `, ``, 1)
	if _, err := Parse([]byte(relaxed)); err != nil {
		t.Errorf("inference doc without training batch rejected: %v", err)
	}
	bad := []struct {
		name, doc string
	}{
		{"missing inference section",
			`{"workload":"inference","model":{"preset":"mingpt"},"training":{"global_batch":8}}`},
		{"non-positive serving batch",
			`{"workload":"inference","model":{"preset":"mingpt"},"inference":{"prompt_len":64,"gen_tokens":8}}`},
		{"unknown workload",
			`{"workload":"serving","model":{"preset":"mingpt"},"training":{"global_batch":8}}`},
		{"training doc without batch",
			`{"workload":"training","model":{"preset":"mingpt"}}`},
	}
	for _, tc := range bad {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A training document does not resolve as a serving scenario.
	doc, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := doc.InferenceScenario(); err == nil {
		t.Error("training doc resolved as inference scenario")
	}

	// Out-of-range occupancy is rejected at resolution.
	badOcc := strings.Replace(inferenceDoc, `"occupancy": 0.85`, `"occupancy": 1.5`, 1)
	doc, err = Parse([]byte(badOcc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := doc.InferenceScenario(); err == nil {
		t.Error("occupancy 1.5 accepted")
	}
}
