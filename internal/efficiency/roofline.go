package efficiency

import (
	"fmt"
	"math"
)

// Roofline is a first-principles microbatch-efficiency predictor — the
// "predictive model for eff(ub)" the paper leaves as future work. Instead
// of fitting a·ub/(b+ub) to measurements, it derives utilization from the
// accelerator's compute/memory roofline plus a fixed per-kernel overhead,
// evaluated on the transformer layer's dominant GEMM:
//
//	M = ub·s tokens,  K = h,  N = h / TPShard
//	t_compute = M·K·N / PeakMACs
//	t_memory  = (M·K + K·N + M·N) · BytesPerElem / MemBW
//	t_total   = max(t_compute, t_memory) + KernelOverhead
//	eff(ub)   = MaxEff · t_compute / t_total
//
// Small microbatches are memory- and launch-bound (the weight tile K·N
// must stream regardless of M), so efficiency rises with ub and saturates
// at MaxEff — reproducing the empirical saturating shape from hardware
// parameters alone.
type Roofline struct {
	// PeakMACs is the accelerator's peak MAC throughput (MACs/s).
	PeakMACs float64
	// MemBW is the device memory bandwidth in bytes/s.
	MemBW float64
	// Hidden is h and SeqLen is s of the workload.
	Hidden, SeqLen int
	// TPShard divides the weight matrix across tensor-parallel workers
	// (smaller local GEMMs saturate later). Zero means 1.
	TPShard int
	// BytesPerElem is the operand size (2 for FP16). Zero means 2.
	BytesPerElem float64
	// KernelOverhead is the fixed launch/synchronization cost charged per
	// GEMM invocation. Zero means 5 µs.
	KernelOverhead float64
	// MaxEff is the asymptotic utilization (imperfect tiling, non-GEMM
	// work). Zero means 0.9.
	MaxEff float64
}

// withDefaults fills the zero-valued knobs.
func (r Roofline) withDefaults() Roofline {
	if r.TPShard <= 0 {
		r.TPShard = 1
	}
	if r.BytesPerElem <= 0 {
		r.BytesPerElem = 2
	}
	if r.KernelOverhead <= 0 {
		r.KernelOverhead = 5e-6
	}
	if r.MaxEff <= 0 {
		r.MaxEff = 0.9
	}
	return r
}

// Validate checks the physical parameters.
func (r Roofline) Validate() error {
	d := r.withDefaults()
	switch {
	case d.PeakMACs <= 0:
		return fmt.Errorf("efficiency: roofline peak %g must be positive", d.PeakMACs)
	case d.MemBW <= 0:
		return fmt.Errorf("efficiency: roofline memory bandwidth %g must be positive", d.MemBW)
	case d.Hidden <= 0 || d.SeqLen <= 0:
		return fmt.Errorf("efficiency: roofline needs positive hidden (%d) and seq (%d)", d.Hidden, d.SeqLen)
	case d.MaxEff > 1:
		return fmt.Errorf("efficiency: roofline max efficiency %g above 1", d.MaxEff)
	}
	return nil
}

// Eff implements Model.
func (r Roofline) Eff(ub float64) float64 {
	d := r.withDefaults()
	if ub <= 0 || d.PeakMACs <= 0 || d.MemBW <= 0 {
		return 1e-9
	}
	m := ub * float64(d.SeqLen)
	k := float64(d.Hidden)
	n := k / float64(d.TPShard)
	compute := m * k * n / d.PeakMACs
	memory := (m*k + k*n + m*n) * d.BytesPerElem / d.MemBW
	total := math.Max(compute, memory) + d.KernelOverhead
	e := d.MaxEff * compute / total
	if e <= 0 {
		return 1e-9
	}
	if e > 1 {
		e = 1
	}
	return e
}

// HalfSaturation returns the microbatch size at which the predictor
// reaches half of MaxEff — the analogue of the fitted curve's B parameter,
// useful for comparing a derived roofline against a measured fit.
func (r Roofline) HalfSaturation() float64 {
	d := r.withDefaults()
	target := d.MaxEff / 2
	lo, hi := 1e-6, 1e9
	for i := 0; i < 200 && hi/lo > 1+1e-12; i++ {
		mid := math.Sqrt(lo * hi)
		if d.Eff(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
