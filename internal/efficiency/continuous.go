package efficiency

import "fmt"

// ContinuousBatching adapts a batch-efficiency curve to a continuously
// batched serving replica. A decode scheduler that admits and retires
// sequences on the fly never runs every admitted slot at once: requests
// finish mid-step, refills lag, and ragged generation lengths leave slots
// idle — so the kernel batch the accelerator actually sees is only an
// Occupancy fraction of the nominal concurrent-sequence count. The variant
// evaluates the wrapped curve at that effective batch, shifting the
// saturation point right without re-fitting the underlying parameters.
type ContinuousBatching struct {
	// Base is the wrapped efficiency curve (nil means Default()).
	Base Model
	// Occupancy is the mean fraction of admitted slots that are actively
	// decoding, in (0, 1]. Measured vLLM-style schedulers typically sit
	// around 0.8–0.9 under load.
	Occupancy float64
}

// Eff evaluates the wrapped curve at the occupancy-derated batch.
func (c ContinuousBatching) Eff(ub float64) float64 {
	base := c.Base
	if base == nil {
		base = Default()
	}
	occ := c.Occupancy
	if occ <= 0 || occ > 1 {
		occ = 1
	}
	return base.Eff(occ * ub)
}

// Validate checks the parameterization.
func (c ContinuousBatching) Validate() error {
	if c.Occupancy <= 0 || c.Occupancy > 1 {
		return fmt.Errorf("efficiency: continuous-batching occupancy %g outside (0,1]", c.Occupancy)
	}
	return nil
}

// String renders the parameterization.
func (c ContinuousBatching) String() string {
	base := c.Base
	if base == nil {
		base = Default()
	}
	return fmt.Sprintf("continuous-batching occupancy %.2f over %v", c.Occupancy, base)
}
