// Package efficiency models microbatch efficiency eff(ub): the fraction of
// an accelerator's peak MAC throughput achieved at a given microbatch size.
//
// The paper derates peak compute by eff(ub) in Eq. 3 and reports that the
// empirical form a·ub/(b+ub) fits measured data well up to a critical
// microbatch size, with a and b depending on the application and system.
// Case Study I additionally clamps the efficiency to a 25% floor and calls
// the resulting kink in the training-time curves an artifact of that choice
// — the floor is therefore an explicit knob here.
package efficiency

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Model maps a microbatch size to a utilization fraction in (0, 1].
type Model interface {
	// Eff returns the achieved fraction of peak throughput for microbatch
	// size ub (in sequences; fractional values arise from uneven splits).
	Eff(ub float64) float64
}

// Saturating is the paper's empirical functional form
//
//	eff(ub) = A·ub / (B + ub)
//
// clamped to [Floor, 1]. A is the asymptotic utilization, B the microbatch
// size at which half of A is reached.
type Saturating struct {
	// A is the asymptotic efficiency (0 < A <= 1).
	A float64
	// B is the half-saturation microbatch size (B > 0).
	B float64
	// Floor is the lower clamp; Case Study I uses 0.25. Zero disables it.
	Floor float64
}

// Default returns the calibration used for the case-study reproductions:
// ~80% utilization at per-replica batch 128 (paper §VI-C: "up to 80%"),
// ~30% at microbatch 16 (§VI-B: "approx. 31%"), with the 25% floor.
func Default() Saturating { return Saturating{A: 0.9, B: 28, Floor: 0.25} }

// Eff evaluates the saturating curve with clamping. Non-positive microbatch
// sizes yield the floor (an idle or fractional-starved accelerator still
// pays the floor's worth of progress in the paper's accounting).
func (s Saturating) Eff(ub float64) float64 {
	e := 0.0
	if ub > 0 && s.B+ub > 0 {
		e = s.A * ub / (s.B + ub)
	}
	if e < s.Floor {
		e = s.Floor
	}
	if e > 1 {
		e = 1
	}
	if e <= 0 {
		// A degenerate parameterization (A<=0, no floor) would otherwise
		// produce a zero divisor in Eq. 3; pin a tiny utilization instead.
		e = 1e-9
	}
	return e
}

// Validate checks the parameterization is usable.
func (s Saturating) Validate() error {
	switch {
	case s.A <= 0 || s.A > 1:
		return fmt.Errorf("efficiency: asymptote A=%g outside (0,1]", s.A)
	case s.B <= 0:
		return fmt.Errorf("efficiency: half-saturation B=%g must be positive", s.B)
	case s.Floor < 0 || s.Floor > 1:
		return fmt.Errorf("efficiency: floor %g outside [0,1]", s.Floor)
	}
	return nil
}

// String renders the parameterization.
func (s Saturating) String() string {
	return fmt.Sprintf("eff(ub) = %.3g·ub/(%.3g+ub), floor %.2f", s.A, s.B, s.Floor)
}

// Fixed is a constant efficiency, useful for calibrating against published
// results where the average utilization is known.
type Fixed float64

// Eff returns the constant, clamped to (0, 1].
func (f Fixed) Eff(float64) float64 {
	v := float64(f)
	if v <= 0 {
		return 1e-9
	}
	if v > 1 {
		return 1
	}
	return v
}

// Point is one (microbatch size, measured efficiency) observation.
type Point struct {
	UB  float64
	Eff float64
}

// Fit estimates Saturating parameters from measured points by least squares.
// For a fixed B the optimal A is the closed-form linear regression through
// the origin on x = ub/(B+ub); Fit golden-section-searches B over a wide
// bracket. At least two points with distinct microbatch sizes are required.
// The returned model has no floor; callers add one deliberately.
func Fit(points []Point) (Saturating, error) {
	if len(points) < 2 {
		return Saturating{}, errors.New("efficiency: need at least 2 points to fit")
	}
	distinct := map[float64]bool{}
	maxUB := 0.0
	for _, p := range points {
		if p.UB <= 0 || p.Eff <= 0 || p.Eff > 1 {
			return Saturating{}, fmt.Errorf("efficiency: invalid point (ub=%g, eff=%g)", p.UB, p.Eff)
		}
		distinct[p.UB] = true
		if p.UB > maxUB {
			maxUB = p.UB
		}
	}
	if len(distinct) < 2 {
		return Saturating{}, errors.New("efficiency: points must cover at least 2 distinct microbatch sizes")
	}

	bestA := func(b float64) float64 {
		var num, den float64
		for _, p := range points {
			x := p.UB / (b + p.UB)
			num += x * p.Eff
			den += x * x
		}
		if den == 0 {
			return 0
		}
		a := num / den
		if a > 1 {
			a = 1
		}
		return a
	}
	sse := func(b float64) float64 {
		a := bestA(b)
		var s float64
		for _, p := range points {
			r := p.Eff - a*p.UB/(b+p.UB)
			s += r * r
		}
		return s
	}

	// Golden-section search on log(B) over [maxUB/1e4, maxUB*1e2].
	lo, hi := math.Log(maxUB/1e4), math.Log(maxUB*1e2)
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := sse(math.Exp(x1)), sse(math.Exp(x2))
	for i := 0; i < 200 && hi-lo > 1e-10; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = sse(math.Exp(x1))
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = sse(math.Exp(x2))
		}
	}
	b := math.Exp((lo + hi) / 2)
	fit := Saturating{A: bestA(b), B: b}
	if err := fit.Validate(); err != nil {
		return Saturating{}, fmt.Errorf("efficiency: fit degenerate: %w", err)
	}
	return fit, nil
}

// Table interpolates measured (ub, eff) points piecewise-linearly, clamping
// outside the measured range. It lets users bypass the functional form and
// drive the model directly from profiler data.
type Table struct {
	points []Point
}

// NewTable builds a Table from observations, sorting and validating them.
func NewTable(points []Point) (*Table, error) {
	if len(points) == 0 {
		return nil, errors.New("efficiency: empty table")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].UB < ps[j].UB })
	for i, p := range ps {
		if p.UB <= 0 || p.Eff <= 0 || p.Eff > 1 {
			return nil, fmt.Errorf("efficiency: invalid table point (ub=%g, eff=%g)", p.UB, p.Eff)
		}
		if i > 0 && p.UB == ps[i-1].UB {
			return nil, fmt.Errorf("efficiency: duplicate table microbatch size %g", p.UB)
		}
	}
	return &Table{points: ps}, nil
}

// Eff interpolates linearly between the bracketing observations.
func (t *Table) Eff(ub float64) float64 {
	ps := t.points
	if ub <= ps[0].UB {
		return ps[0].Eff
	}
	if ub >= ps[len(ps)-1].UB {
		return ps[len(ps)-1].Eff
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].UB >= ub })
	a, b := ps[i-1], ps[i]
	w := (ub - a.UB) / (b.UB - a.UB)
	return a.Eff + w*(b.Eff-a.Eff)
}
