package efficiency

import (
	"math"
	"testing"
	"testing/quick"
)

// a100Roofline is an A100-class roofline for a Megatron-145B-shaped layer.
func a100Roofline() Roofline {
	return Roofline{
		PeakMACs: 1.56e14,  // 312 TFLOP/s FP16
		MemBW:    2.039e12, // 2039 GB/s
		Hidden:   12288,
		SeqLen:   2048,
		TPShard:  8,
	}
}

func TestRooflineMonotoneSaturating(t *testing.T) {
	r := a100Roofline()
	prev := 0.0
	for ub := 0.001; ub < 1e5; ub *= 2 {
		e := r.Eff(ub)
		if e < prev-1e-12 {
			t.Fatalf("not monotone at ub=%v: %v < %v", ub, e, prev)
		}
		if e <= 0 || e > 0.9 {
			t.Fatalf("eff(%v) = %v outside (0, MaxEff]", ub, e)
		}
		prev = e
	}
	if asym := r.Eff(1e9); math.Abs(asym-0.9) > 0.01 {
		t.Errorf("asymptote = %v, want ~MaxEff 0.9", asym)
	}
}

func TestRooflineDefaults(t *testing.T) {
	r := Roofline{PeakMACs: 1e14, MemBW: 2e12, Hidden: 1024, SeqLen: 512}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.Eff(0); got != 1e-9 {
		t.Errorf("Eff(0) = %v, want epsilon", got)
	}
	if got := r.Eff(-1); got != 1e-9 {
		t.Errorf("Eff(-1) = %v", got)
	}
}

func TestRooflineValidate(t *testing.T) {
	bad := []Roofline{
		{PeakMACs: 0, MemBW: 1, Hidden: 8, SeqLen: 8},
		{PeakMACs: 1, MemBW: 0, Hidden: 8, SeqLen: 8},
		{PeakMACs: 1, MemBW: 1, Hidden: 0, SeqLen: 8},
		{PeakMACs: 1, MemBW: 1, Hidden: 8, SeqLen: 0},
		{PeakMACs: 1, MemBW: 1, Hidden: 8, SeqLen: 8, MaxEff: 1.5},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("roofline %d accepted: %+v", i, r)
		}
	}
}

func TestRooflineTPShardDelaysSaturation(t *testing.T) {
	// Sharding the weight tile across more TP workers shrinks the local
	// GEMM, so the same microbatch utilizes the device less.
	narrow := a100Roofline()
	narrow.TPShard = 64
	wide := a100Roofline()
	wide.TPShard = 1
	for _, ub := range []float64{0.01, 0.1, 1} {
		if narrow.Eff(ub) >= wide.Eff(ub) {
			t.Errorf("ub=%v: TP64 eff %v not below TP1 eff %v",
				ub, narrow.Eff(ub), wide.Eff(ub))
		}
	}
	if narrow.HalfSaturation() <= wide.HalfSaturation() {
		t.Errorf("TP64 half-saturation %v not above TP1 %v",
			narrow.HalfSaturation(), wide.HalfSaturation())
	}
}

func TestRooflineBandwidthMatters(t *testing.T) {
	// Unsharded weights keep the GEMM arithmetic intensity high enough
	// that the compute-bound regime is reachable even at 1/10 bandwidth.
	slow := a100Roofline()
	slow.TPShard = 1
	slow.MemBW /= 10
	fast := a100Roofline()
	fast.TPShard = 1
	// At tiny microbatches the weight stream dominates: less bandwidth,
	// less efficiency.
	if slow.Eff(0.01) >= fast.Eff(0.01) {
		t.Errorf("slow-memory eff %v not below fast %v", slow.Eff(0.01), fast.Eff(0.01))
	}
	// At huge microbatches both are compute-bound and equal.
	if math.Abs(slow.Eff(1e7)-fast.Eff(1e7)) > 0.02 {
		t.Errorf("compute-bound effs differ: %v vs %v", slow.Eff(1e7), fast.Eff(1e7))
	}
}

func TestRooflineHalfSaturation(t *testing.T) {
	r := a100Roofline()
	half := r.HalfSaturation()
	if half <= 0 {
		t.Fatalf("half-saturation = %v", half)
	}
	if got := r.Eff(half); math.Abs(got-0.45) > 0.01 {
		t.Errorf("eff at half-saturation = %v, want ~0.45", got)
	}
}

func TestRooflineMatchesSaturatingShape(t *testing.T) {
	// The derived curve should be well-approximated by the paper's
	// empirical a·ub/(b+ub) form: fit one and compare across the range.
	r := a100Roofline()
	var pts []Point
	for _, ub := range []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100} {
		pts = append(pts, Point{UB: ub, Eff: r.Eff(ub)})
	}
	fit, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// The roofline's max() kink is sharper than the smooth hyperbola,
		// so allow a modest band around the crossover.
		if math.Abs(fit.Eff(p.UB)-p.Eff) > 0.12 {
			t.Errorf("fit deviates at ub=%v: roofline %v vs fit %v",
				p.UB, p.Eff, fit.Eff(p.UB))
		}
	}
}

func TestRooflineImplementsModel(t *testing.T) {
	var _ Model = Roofline{}
	var _ Model = a100Roofline()
}

func TestRooflineProperty(t *testing.T) {
	// Larger microbatch never reduces efficiency, whatever the shape.
	f := func(h, s uint8, a, b float64) bool {
		r := Roofline{
			PeakMACs: 1e13, MemBW: 1e12,
			Hidden: int(h)%64*64 + 64, SeqLen: int(s)%512 + 1,
		}
		x, y := math.Abs(a), math.Abs(b)
		if math.IsNaN(x) || math.IsNaN(y) || x > 1e6 || y > 1e6 {
			return true
		}
		lo, hi := math.Min(x, y), math.Max(x, y)
		return r.Eff(lo) <= r.Eff(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
