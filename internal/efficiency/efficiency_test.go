package efficiency

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSaturatingBasics(t *testing.T) {
	s := Saturating{A: 0.9, B: 28}
	if got := s.Eff(28); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("Eff at half-saturation = %v, want 0.45", got)
	}
	if got := s.Eff(1e12); math.Abs(got-0.9) > 1e-6 {
		t.Errorf("asymptote = %v, want ~0.9", got)
	}
	if got := s.Eff(0); got != 1e-9 {
		t.Errorf("Eff(0) without floor = %v, want epsilon", got)
	}
}

func TestFloorClamp(t *testing.T) {
	s := Default()
	if got := s.Eff(1); got != 0.25 {
		t.Errorf("Eff(1) = %v, want floor 0.25", got)
	}
	if got := s.Eff(0); got != 0.25 {
		t.Errorf("Eff(0) = %v, want floor 0.25", got)
	}
	// Above the floor the curve takes over.
	if got := s.Eff(128); got <= 0.25 || got >= 0.9 {
		t.Errorf("Eff(128) = %v, want in (0.25, 0.9)", got)
	}
}

func TestDefaultCalibration(t *testing.T) {
	// The paper narrative this repo calibrates to: ~30% at ub=16 (§VI-B
	// quotes "approx. 31%"), ~70-80% at per-replica batch 128 (§VI-C).
	d := Default()
	if got := d.Eff(16); got < 0.27 || got > 0.36 {
		t.Errorf("Eff(16) = %v, want ~0.31", got)
	}
	if got := d.Eff(128); got < 0.68 || got > 0.82 {
		t.Errorf("Eff(128) = %v, want ~0.75", got)
	}
}

func TestSaturatingMonotone(t *testing.T) {
	s := Default()
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if math.IsNaN(x) || math.IsNaN(y) || x > 1e12 || y > 1e12 {
			return true // microbatch sizes beyond any real batch
		}
		lo, hi := math.Min(x, y), math.Max(x, y)
		el, eh := s.Eff(lo), s.Eff(hi)
		return el <= eh && el >= 0.25 && eh <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturatingValidate(t *testing.T) {
	cases := []struct {
		s  Saturating
		ok bool
	}{
		{Default(), true},
		{Saturating{A: 0, B: 1}, false},
		{Saturating{A: 1.5, B: 1}, false},
		{Saturating{A: 0.5, B: 0}, false},
		{Saturating{A: 0.5, B: 1, Floor: -0.1}, false},
		{Saturating{A: 0.5, B: 1, Floor: 1.1}, false},
		{Saturating{A: 1, B: 100, Floor: 1}, true},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.s, err, c.ok)
		}
	}
	if s := Default().String(); s == "" {
		t.Error("empty String()")
	}
}

func TestFixed(t *testing.T) {
	if got := Fixed(0.62).Eff(999); got != 0.62 {
		t.Errorf("Fixed eff = %v", got)
	}
	if got := Fixed(0).Eff(1); got != 1e-9 {
		t.Errorf("Fixed(0) = %v, want epsilon", got)
	}
	if got := Fixed(2).Eff(1); got != 1 {
		t.Errorf("Fixed(2) = %v, want clamp to 1", got)
	}
}

func TestFitRecoversKnownCurve(t *testing.T) {
	truth := Saturating{A: 0.85, B: 12}
	var pts []Point
	for _, ub := range []float64{1, 2, 4, 8, 16, 32, 64, 128} {
		pts = append(pts, Point{UB: ub, Eff: truth.Eff(ub)})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-truth.A) > 0.01 {
		t.Errorf("fitted A = %v, want %v", got.A, truth.A)
	}
	if math.Abs(got.B-truth.B)/truth.B > 0.05 {
		t.Errorf("fitted B = %v, want %v", got.B, truth.B)
	}
}

func TestFitNoisy(t *testing.T) {
	truth := Saturating{A: 0.8, B: 20}
	// Deterministic +/-2% alternating noise.
	var pts []Point
	sign := 1.0
	for _, ub := range []float64{2, 5, 10, 20, 40, 80, 160} {
		pts = append(pts, Point{UB: ub, Eff: truth.Eff(ub) * (1 + 0.02*sign)})
		sign = -sign
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ub := range []float64{3, 30, 300} {
		if math.Abs(got.Eff(ub)-truth.Eff(ub)) > 0.05 {
			t.Errorf("fit at ub=%v: %v vs truth %v", ub, got.Eff(ub), truth.Eff(ub))
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([]Point{{UB: 1, Eff: 0.5}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit([]Point{{UB: 4, Eff: 0.5}, {UB: 4, Eff: 0.6}}); err == nil {
		t.Error("single distinct ub accepted")
	}
	if _, err := Fit([]Point{{UB: -1, Eff: 0.5}, {UB: 2, Eff: 0.6}}); err == nil {
		t.Error("negative ub accepted")
	}
	if _, err := Fit([]Point{{UB: 1, Eff: 1.5}, {UB: 2, Eff: 0.6}}); err == nil {
		t.Error("eff > 1 accepted")
	}
}

func TestTableInterpolation(t *testing.T) {
	tab, err := NewTable([]Point{{UB: 10, Eff: 0.5}, {UB: 1, Eff: 0.1}, {UB: 100, Eff: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Eff(0.5); got != 0.1 {
		t.Errorf("below-range clamp = %v, want 0.1", got)
	}
	if got := tab.Eff(1000); got != 0.9 {
		t.Errorf("above-range clamp = %v, want 0.9", got)
	}
	if got := tab.Eff(5.5); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("midpoint = %v, want 0.3", got)
	}
	if got := tab.Eff(10); got != 0.5 {
		t.Errorf("exact point = %v, want 0.5", got)
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewTable([]Point{{UB: 1, Eff: 0.5}, {UB: 1, Eff: 0.7}}); err == nil {
		t.Error("duplicate ub accepted")
	}
	if _, err := NewTable([]Point{{UB: 0, Eff: 0.5}}); err == nil {
		t.Error("zero ub accepted")
	}
	if _, err := NewTable([]Point{{UB: 1, Eff: 0}}); err == nil {
		t.Error("zero eff accepted")
	}
}

func TestTableMonotoneWhenInputMonotone(t *testing.T) {
	tab, err := NewTable([]Point{{1, 0.1}, {4, 0.3}, {16, 0.6}, {64, 0.85}})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for ub := 0.5; ub < 200; ub *= 1.3 {
		e := tab.Eff(ub)
		if e < prev {
			t.Fatalf("table interpolation not monotone at ub=%v", ub)
		}
		prev = e
	}
}
