package efficiency

import "testing"

func TestContinuousBatching(t *testing.T) {
	base := Saturating{A: 0.9, B: 28}
	cb := ContinuousBatching{Base: base, Occupancy: 0.8}
	for _, ub := range []float64{1, 8, 64, 512} {
		if got, want := cb.Eff(ub), base.Eff(0.8*ub); got != want {
			t.Errorf("Eff(%g) = %g, want base at derated batch %g", ub, got, want)
		}
		if cb.Eff(ub) > base.Eff(ub) {
			t.Errorf("occupancy derating raised efficiency at ub=%g", ub)
		}
	}
	// Full occupancy is the identity; nil base falls back to Default().
	if got, want := (ContinuousBatching{Base: base, Occupancy: 1}).Eff(16), base.Eff(16); got != want {
		t.Errorf("occupancy 1: got %g, want %g", got, want)
	}
	if got, want := (ContinuousBatching{Occupancy: 0.5}).Eff(16), Default().Eff(8.0); got != want {
		t.Errorf("nil base: got %g, want %g", got, want)
	}
	// Out-of-range occupancy degrades to the identity rather than exploding.
	if got, want := (ContinuousBatching{Base: base}).Eff(16), base.Eff(16); got != want {
		t.Errorf("zero occupancy: got %g, want %g", got, want)
	}

	if err := (ContinuousBatching{Occupancy: 0.8}).Validate(); err != nil {
		t.Errorf("valid occupancy rejected: %v", err)
	}
	for _, occ := range []float64{0, -1, 1.5} {
		if err := (ContinuousBatching{Occupancy: occ}).Validate(); err == nil {
			t.Errorf("occupancy %g accepted, want error", occ)
		}
	}
}
