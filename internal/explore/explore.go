// Package explore is AMPeD's design-space exploration engine: it sweeps
// parallelism mappings and batch sizes over a scenario (model + system +
// training recipe), evaluates every point with the analytical model
// concurrently, filters memory-infeasible points, and ranks the survivors.
// Case Studies I–III of the paper are thin drivers over this package.
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amped/internal/efficiency"
	"amped/internal/hardware"
	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// Scenario fixes everything a sweep does not vary.
type Scenario struct {
	// Name labels the sweep in reports.
	Name string
	// Model is the transformer architecture.
	Model *transformer.Model
	// System is the machine.
	System *hardware.System
	// Training carries the recipe knobs; Batch.Global and
	// Batch.Microbatches are overridden per point.
	Training model.Training
	// Eff is the microbatch-efficiency model (nil = efficiency.Default).
	Eff efficiency.Model
	// Memory, when non-nil, enables the feasibility filter.
	Memory *memkit.Config
	// MemoryReserve is the fraction of device memory held back for
	// framework overhead when filtering (e.g. 0.1).
	MemoryReserve float64
	// Session, when non-nil, supplies a pre-compiled session and the sweep
	// skips model.Compile; the session's own model, system, training recipe
	// and efficiency model override the fields above so the two can never
	// disagree. The sweep leaves a supplied session untouched (no Prepare),
	// so one cached session can serve any number of concurrent sweeps —
	// the serving layer's session-cache path.
	Session *model.Session
}

// Options selects what the sweep varies.
type Options struct {
	// Mappings lists explicit mappings to evaluate. Empty means enumerate
	// all mappings valid for the system via Enumerate.
	Mappings []parallel.Mapping
	// Enumerate configures the enumeration when Mappings is empty. MaxTP
	// and MaxPP default to the model's head and layer counts.
	Enumerate parallel.EnumerateOptions
	// Batches lists the global batch sizes to sweep (required).
	Batches []int
	// MicrobatchTarget sets the preferred microbatch size; the sweep picks
	// N_ub as the divisor of the per-replica batch nearest
	// perReplica/target, at least the pipeline depth so the pipeline can
	// fill. Zero keeps the scenario's Batch.Microbatches (or its default).
	MicrobatchTarget int
	// Concurrency bounds parallel evaluations (default: GOMAXPROCS).
	Concurrency int
	// KeepInvalid retains points whose evaluation failed (Err set) instead
	// of dropping them.
	KeepInvalid bool
	// CursorLo and CursorHi select a half-open slice [CursorLo, CursorHi)
	// of the canonical cell enumeration — mapping-major, batch-minor over
	// the deterministically ordered mappings × Batches, so cell index
	// idx maps to (mappings[idx/len(Batches)], Batches[idx%len(Batches)]).
	// Both zero sweeps the whole space. The serving layer uses the range to
	// shard one sweep across replicas; Cells reports the enumeration size.
	CursorLo, CursorHi int64
	// Progress, when non-nil, receives live sweep instrumentation: points
	// laid out, claimed by workers, completed and failed, plus the
	// cooperative-cancel latency. Counters are atomic, so a monitor
	// goroutine (amped-explore's -progress flag, the serving layer's
	// metrics) can read them while the sweep runs.
	Progress *Progress
}

// Progress is a sweep's live instrumentation, updated atomically by the
// worker pool and readable from any goroutine while the sweep runs. The
// zero value is ready to use; pass one in Options.Progress.
type Progress struct {
	// Total is the number of points laid out for evaluation.
	Total atomic.Int64
	// Claimed counts points handed to workers (chunk granularity: a chunk's
	// points are all claimed at once when a worker takes the chunk).
	Claimed atomic.Int64
	// Completed counts points whose evaluation finished (success or error).
	// Like Claimed it advances at chunk granularity: the batched evaluation
	// path prices a whole chunk per call, so per-point atomics would cost
	// more than they observe.
	Completed atomic.Int64
	// Failed counts completed points whose evaluation set Err — including
	// points pre-marked infeasible at layout time.
	Failed atomic.Int64
	// CancelLatencyNanos is the delay between context cancellation and the
	// last worker stopping — the cooperative-cancel latency (zero when the
	// sweep was never cancelled).
	CancelLatencyNanos atomic.Int64
}

// Point is one evaluated design point.
type Point struct {
	// Mapping and Batch identify the point.
	Mapping parallel.Mapping
	Batch   int
	// Microbatches is the N_ub the sweep chose.
	Microbatches int
	// Breakdown is the model's output (nil if Err is set).
	Breakdown *model.Breakdown
	// Footprint is the per-accelerator memory estimate when the scenario
	// enables the memory model.
	Footprint *memkit.Footprint
	// Fits reports the memory feasibility check (true when not checked).
	Fits bool
	// Err records an evaluation failure (invalid mapping/batch combos).
	Err error

	// chosenNub is the raw Microbatches value handed to the evaluator
	// (0 = derive the default); Microbatches above is the resolved N_ub.
	chosenNub int
}

// String identifies the point.
func (p Point) String() string {
	return fmt.Sprintf("%v B=%d m=%d", p.Mapping, p.Batch, p.Microbatches)
}

// MicrobatchFeasible reports whether any microbatch schedule can satisfy
// N_ub >= pp for the per-replica batch: N_ub divides perReplica and a
// microbatch holds at least one sequence, so N_ub <= perReplica — when the
// pipeline is deeper than the per-replica batch no divisor qualifies and
// the pipeline can never fill. Sweeps mark such cells infeasible instead
// of silently evaluating a schedule that violates the N_ub >= N_PP
// contract (the model's Eq. 8 bubble term assumes a fillable pipeline).
func MicrobatchFeasible(perReplica, pp int) bool {
	return perReplica > 0 && pp <= perReplica
}

// ChooseMicrobatches picks N_ub for a per-replica batch: the divisor of
// perReplica closest to perReplica/target (i.e. microbatch size closest to
// target), but at least the pipeline depth pp so every stage can be busy.
//
// The "at least pp" guarantee only holds when a qualifying divisor exists,
// i.e. when MicrobatchFeasible(perReplica, pp): N_ub divides perReplica,
// so pp > perReplica leaves no valid choice and the function falls back to
// perReplica itself (microbatch 1) — a schedule that cannot fill the
// pipeline. Callers that enumerate mappings (the sweep) must treat that
// case as infeasible rather than evaluating the fallback.
//
// The candidates come from the memoized O(√n) divisor table; ties keep the
// smallest divisor, matching the historical ascending scan.
func ChooseMicrobatches(perReplica, pp, target int) int {
	if perReplica <= 0 {
		return 1
	}
	if pp > perReplica {
		return perReplica
	}
	if target <= 0 {
		target = 1
	}
	want := perReplica / target
	if want < pp {
		want = pp
	}
	best := perReplica
	bestDist := perReplica
	for _, d := range parallel.Divisors(perReplica) {
		if d < pp {
			continue
		}
		dist := d - want
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best
}

// Sweep evaluates every (mapping, batch) combination and returns the points
// in deterministic (mapping-major, batch-minor) order.
func Sweep(sc Scenario, opt Options) ([]Point, error) {
	return SweepContext(context.Background(), sc, opt)
}

// SweepContext is Sweep with cooperative cancellation: workers check the
// context at chunk boundaries (every chunkSize points), so a cancelled or
// timed-out sweep stops within one chunk's worth of evaluations per worker
// and returns the context's error. Points completed before cancellation
// are returned alongside that error — explicitly labeled partial work, so
// a deadline-bound caller (the serving layer's 206 path) can hand back
// what finished instead of discarding it. Callers that must not act on a
// partial design space simply treat err != nil as fatal; the non-nil error
// makes the truncation impossible to miss.
func SweepContext(ctx context.Context, sc Scenario, opt Options) ([]Point, error) {
	points, sess, err := Layout(&sc, opt)
	if err != nil {
		return nil, err
	}

	workers := opt.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prog := opt.Progress
	if prog == nil {
		prog = new(Progress) // keeps the worker loop branch-free
	}
	prog.Total.Store(int64(len(points)))

	// Timestamp the moment of cancellation (if any) so the cooperative
	// cancel latency — cancel to last-worker-stop — is measurable. The
	// stamped channel lets the post-wait path block until the stamp exists:
	// once ctx.Err() is non-nil the AfterFunc goroutine is guaranteed to be
	// scheduled, but not to have run yet.
	var cancelledAt atomic.Int64
	stamped := make(chan struct{})
	stopAfter := context.AfterFunc(ctx, func() {
		cancelledAt.Store(time.Now().UnixNano())
		close(stamped)
	})
	defer stopAfter()

	// One breakdown slot per point, allocated in a single block; workers
	// claim chunked index ranges off an atomic cursor instead of receiving
	// per-index channel sends, cutting synchronization traffic and false
	// sharing on adjacent cells. Each worker carries reusable SoA columns
	// and prices its whole chunk through Session.EvaluateBatch, which hoists
	// config resolution, aggregate lookups and reliability gating out of
	// the per-point loop.
	bds := make([]model.Breakdown, len(points))
	chunk := chunkSize(len(points), workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var in model.BatchInput
			var out model.BatchOutput
			var idxs []int
			for {
				// Cooperative cancellation, checked once per chunk claim:
				// cheap enough to leave the per-point path untouched, tight
				// enough that a cancelled sweep stops within one chunk.
				if ctx.Err() != nil {
					return
				}
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= len(points) {
					return
				}
				if end > len(points) {
					end = len(points)
				}
				prog.Claimed.Add(int64(end - start))
				evalChunk(points[start:end], bds[start:end], sess, &sc, &in, &out, &idxs)
				failed := 0
				for i := start; i < end; i++ {
					if points[i].Err != nil {
						failed++
					}
				}
				if failed > 0 {
					prog.Failed.Add(int64(failed))
				}
				prog.Completed.Add(int64(end - start))
			}
		}()
	}
	wg.Wait()
	cancelled := ctx.Err()
	if cancelled != nil {
		<-stamped
		lat := time.Now().UnixNano() - cancelledAt.Load()
		if lat < 1 {
			lat = 1 // a cancel observed faster than the clock tick still counts
		}
		prog.CancelLatencyNanos.Store(lat)
		// Keep only cells that actually finished (evaluated, or decided at
		// layout time); unclaimed cells are still zero-valued and must not
		// masquerade as results.
		done := points[:0]
		for _, p := range points {
			if p.Err != nil || p.Breakdown != nil {
				done = append(done, p)
			}
		}
		points = done
	}

	if !opt.KeepInvalid {
		kept := points[:0]
		for _, p := range points {
			if p.Err == nil {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	return points, cancelled
}

// Layout resolves the scenario (compiling a session when one was not
// supplied) and lays out the canonical cells [CursorLo, CursorHi) exactly as
// SweepContext would hand them to its workers: mapping-major, batch-minor
// over the deterministically ordered mappings × Batches, microbatch
// schedules chosen (and memoized) up front, pipeline-unfillable cells
// pre-marked with Err. It is the shared front half of every search over the
// cell enumeration — the exhaustive sweep and the branch-and-bound planner
// (internal/plan) both consume it, which is what makes their results
// cell-for-cell comparable. The scenario is resolved in place so the caller
// can keep using it with EvaluateCell.
func Layout(sc *Scenario, opt Options) ([]Point, *model.Session, error) {
	sc.resolveSession()
	mappings, err := resolveMappings(sc, opt)
	if err != nil {
		return nil, nil, err
	}
	total := int64(len(mappings)) * int64(len(opt.Batches))
	lo, hi := opt.CursorLo, opt.CursorHi
	if lo == 0 && hi == 0 {
		hi = total
	}
	if lo < 0 || hi < lo || hi > total {
		return nil, nil, fmt.Errorf("explore: shard range [%d, %d) outside cell enumeration of size %d", lo, hi, total)
	}
	eff := sc.Eff
	if eff == nil {
		eff = efficiency.Default()
	}

	// Compile the scenario once: invariants validated, Eq. 3–4 constants
	// hoisted, per-batch op aggregates cached — every worker then evaluates
	// points in O(1) with zero allocations on the hot path. A supplied
	// session skips both Compile and Prepare: it may be shared with other
	// sweeps running right now, and Prepare is single-writer. Unprepared
	// batches memoize safely through the session's side table.
	sess := sc.Session
	if sess == nil {
		sess, err = model.Compile(sc.Model, sc.System, sc.Training, eff)
		if err != nil {
			return nil, nil, err
		}
		sess.Prepare(opt.Batches...)
	}

	// Lay out the cells [lo, hi) and pick each point's microbatch schedule
	// up front. The (perReplica, pp) → N_ub choice repeats across mappings
	// sharing degrees, so it is memoized; doing it serially here keeps the
	// worker pool read-only over shared state. The flat global-index walk
	// makes a shard range evaluate exactly the cells a whole-space sweep
	// would lay out at those indices — shard-boundary determinism is a
	// consequence of sharing this loop, not a separate code path.
	points := make([]Point, hi-lo)
	nubMemo := make(map[[2]int]int)
	nb := int64(len(opt.Batches))
	lastMi := int64(-1)
	var dp, pp int
	for gi := lo; gi < hi; gi++ {
		mi := gi / nb
		mp := mappings[mi]
		if mi != lastMi {
			dp, pp = mp.DP(), mp.PP()
			lastMi = mi
		}
		b := opt.Batches[gi%nb]
		idx := int(gi - lo)
		p := Point{Mapping: mp, Batch: b, Fits: true}
		nub := sc.Training.Batch.Microbatches
		// Only dividing cells get a schedule chosen (and memoized):
		// b/dp truncates otherwise, and the truncated per-replica batch
		// would pick an N_ub for a cell that does not exist. The
		// non-dividing cell keeps the scenario's schedule and is
		// rejected by Batch.Validate during evaluation.
		if opt.MicrobatchTarget > 0 && b%dp == 0 {
			per := b / dp
			if !MicrobatchFeasible(per, pp) {
				// No divisor of per satisfies N_ub >= pp: the pipeline
				// can never fill. Pre-mark the cell infeasible instead
				// of evaluating ChooseMicrobatches' fallback schedule.
				p.Microbatches = per
				p.Err = fmt.Errorf(
					"explore: %v B=%d infeasible: pipeline depth %d exceeds per-replica batch %d, no microbatch count satisfies N_ub >= N_PP",
					mp, b, pp, per)
				points[idx] = p
				continue
			}
			key := [2]int{per, pp}
			var ok bool
			if nub, ok = nubMemo[key]; !ok {
				nub = ChooseMicrobatches(per, pp, opt.MicrobatchTarget)
				nubMemo[key] = nub
			}
		}
		p.Microbatches = parallel.Batch{Global: b, Microbatches: nub}.MicrobatchesOrDefault(mp)
		p.chosenNub = nub
		points[idx] = p
	}
	return points, sess, nil
}

// EvaluateCell prices one laid-out cell in place against the session: the
// full evaluation (breakdown, plus the scenario's optional memory
// feasibility check), with the sweep workers' panic isolation. Cells
// pre-marked with Err at layout time are left as-is — their diagnosis is
// already final.
func EvaluateCell(p *Point, bd *model.Breakdown, sess *model.Session, sc *Scenario) {
	if p.Err != nil {
		return
	}
	evalPointSafe(p, bd, sess, sc)
}

// CellLowerBound returns the admissible lower bound on the cell's rank key
// (see model.Session.LowerBound) using the exact microbatch schedule the
// layout chose for the cell, so bound and full evaluation price the same
// schedule. The error contract matches EvaluateCell: a cell whose bound
// fails validation fails the full evaluation with the identical error.
func CellLowerBound(p *Point, sess *model.Session) (float64, error) {
	return sess.LowerBound(p.Mapping, p.Batch, p.chosenNub)
}

// ChosenMicrobatches exposes the raw N_ub value the layout handed to the
// evaluator for this cell (0 = derive the default) — the schedule identity
// external evaluators (the heterogeneous planner) need to reprice the cell.
func (p Point) ChosenMicrobatches() int { return p.chosenNub }

// resolveSession makes a supplied pre-compiled session the source of truth
// for everything it captured at Compile time.
func (sc *Scenario) resolveSession() {
	if sc.Session != nil {
		sc.Model = sc.Session.Model()
		sc.System = sc.Session.System()
		sc.Training = sc.Session.Training()
		sc.Eff = sc.Session.Eff()
	}
}

// resolveMappings validates the scenario/options pair and returns the
// deterministic mapping list the canonical cell enumeration is built over.
func resolveMappings(sc *Scenario, opt Options) ([]parallel.Mapping, error) {
	if sc.Model == nil || sc.System == nil {
		return nil, errors.New("explore: scenario needs a model and a system")
	}
	if len(opt.Batches) == 0 {
		return nil, errors.New("explore: no batch sizes to sweep")
	}
	mappings := opt.Mappings
	if len(mappings) == 0 {
		en := opt.Enumerate
		if en.MaxTP == 0 {
			en.MaxTP = sc.Model.Heads
		}
		if en.MaxPP == 0 {
			en.MaxPP = sc.Model.Layers
		}
		mappings = parallel.Enumerate(sc.System, en)
	}
	if len(mappings) == 0 {
		return nil, errors.New("explore: no mappings to evaluate")
	}
	return mappings, nil
}

// Cells reports the size of the canonical cell enumeration for a scenario
// and options — the domain of Options.CursorLo/CursorHi — without
// evaluating anything. Shard coordinators use it to split one sweep into
// [lo, hi) ranges that tile the space.
func Cells(sc Scenario, opt Options) (int64, error) {
	sc.resolveSession()
	mappings, err := resolveMappings(&sc, opt)
	if err != nil {
		return 0, err
	}
	return int64(len(mappings)) * int64(len(opt.Batches)), nil
}

// Chunk size bounds for the batched evaluation path. The floor keeps the
// per-chunk fixed overhead — the cursor claim, three progress updates, the
// column compaction resets and EvaluateBatch's per-run re-derivation at the
// chunk seam, together well under 1 µs — below 1% of a chunk's evaluation
// time (a point costs ~350 ns through the batch path, so 128 points ≈
// 45 µs per chunk). The ceiling keeps cancellation latency and load
// imbalance bounded on huge shards.
const (
	minChunk = 128
	maxChunk = 8192
)

// chunkSize sizes worker chunks adaptively: enough chunks per worker for
// load balance (expensive deep-pipeline cells cluster together in the
// mapping order), clamped to [minChunk, maxChunk] so chunks grow with the
// sweep — the batched path amortizes per-chunk overhead across the whole
// chunk, so bigger sweeps take bigger bites. The chunk never exceeds the
// space itself: a CursorLo/CursorHi shard subrange smaller than the
// 128-cell clamp floor (the coordinator deals exact remainders) must yield
// one exact-fit chunk, not an overshooting claim whose end-clamp quietly
// hides the bad size. Degenerate inputs (n <= 0, workers <= 0) return the
// 1-cell floor: the cursor loop hands out nothing and exits on first claim.
func chunkSize(n, workers int) int {
	if n < 1 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	c := n / (workers * 8)
	if c < minChunk {
		c = minChunk
	}
	if c > maxChunk {
		c = maxChunk
	}
	if c > n {
		c = n
	}
	return c
}

// evalChunk prices one claimed chunk of cells through the batched SoA path:
// compact the undecided cells into reusable input columns (cells pre-marked
// infeasible at layout time are already diagnosed), evaluate the chunk in
// one EvaluateBatch call, then scatter results back through idxs.
//
// The batch call runs panic-isolated: a degenerate user-supplied efficiency
// model or an eventsim guard trip must not take down the worker pool. When
// it does panic, the points it finished before dying are still salvaged —
// EvaluateBatch writes a slot's code last, so an Evaluated() slot is a
// complete result — and only the remainder falls back to per-point scalar
// evaluation, which pins the panic to the exact cell that caused it instead
// of poisoning its chunk-mates.
func evalChunk(pts []Point, bds []model.Breakdown, sess *model.Session, sc *Scenario,
	in *model.BatchInput, out *model.BatchOutput, idxs *[]int) {
	in.Mappings = in.Mappings[:0]
	in.Batches = in.Batches[:0]
	in.Microbatches = in.Microbatches[:0]
	*idxs = (*idxs)[:0]
	for i := range pts {
		if pts[i].Err != nil {
			continue
		}
		in.Mappings = append(in.Mappings, pts[i].Mapping)
		in.Batches = append(in.Batches, pts[i].Batch)
		in.Microbatches = append(in.Microbatches, pts[i].chosenNub)
		*idxs = append(*idxs, i)
	}
	if len(*idxs) == 0 {
		return
	}
	batched := func() (done bool) {
		defer func() {
			if r := recover(); r != nil {
				done = false
			}
		}()
		return sess.EvaluateBatch(*in, out) == nil
	}()
	// On a panic the output columns are only meaningful if the call got as
	// far as sizing them for this chunk (it always does: nothing before the
	// resize runs user code — this is pure defense).
	salvage := batched || len(out.Codes) == len(*idxs)
	for k, i := range *idxs {
		p := &pts[i]
		if !salvage || !out.Codes[k].Evaluated() {
			evalPointSafe(p, &bds[i], sess, sc)
			continue
		}
		if !out.Codes[k].OK() {
			p.Err = out.Errs[k]
			continue
		}
		bds[i] = out.Breakdowns[k]
		p.Breakdown = &bds[i]
		estimateMemorySafe(p, sc)
	}
}

// estimateMemorySafe runs the scenario's optional memory feasibility check
// for one evaluated point, mirroring the scalar path's semantics — the
// breakdown stays on an estimation error (the model priced the point; the
// memory diagnosis rides in Err) — and its panic isolation.
func estimateMemorySafe(p *Point, sc *Scenario) {
	if sc.Memory == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			p.Err = fmt.Errorf("explore: panic estimating memory for %v B=%d m=%d: %v",
				p.Mapping, p.Batch, p.Microbatches, r)
		}
	}()
	batch := parallel.Batch{Global: p.Batch, Microbatches: p.chosenNub}
	fp, err := memkit.Estimate(sc.Model, p.Mapping, batch, *sc.Memory)
	if err != nil {
		p.Err = err
		return
	}
	p.Footprint = &fp
	p.Fits = memkit.Fits(fp, sc.System.Accel, sc.MemoryReserve)
}

// evalPointSafe evaluates one sweep cell, converting a panicking evaluation
// (a degenerate user-supplied efficiency model, an eventsim guard trip) into
// that point's Err instead of killing the process — one poisoned cell must
// not take down a long-running sweep service.
func evalPointSafe(p *Point, bd *model.Breakdown, sess *model.Session, sc *Scenario) {
	defer func() {
		if r := recover(); r != nil {
			p.Breakdown = nil
			p.Footprint = nil
			p.Err = fmt.Errorf("explore: panic evaluating %v B=%d m=%d: %v",
				p.Mapping, p.Batch, p.Microbatches, r)
		}
	}()
	evalPoint(p, bd, sess, sc)
}

// evalPoint evaluates one sweep cell in place against the shared session.
func evalPoint(p *Point, bd *model.Breakdown, sess *model.Session, sc *Scenario) {
	if err := sess.EvaluatePoint(p.Mapping, p.Batch, p.chosenNub, bd); err != nil {
		p.Err = err
		return
	}
	p.Breakdown = bd
	if sc.Memory != nil {
		batch := parallel.Batch{Global: p.Batch, Microbatches: p.chosenNub}
		fp, err := memkit.Estimate(sc.Model, p.Mapping, batch, *sc.Memory)
		if err != nil {
			p.Err = err
			return
		}
		p.Footprint = &fp
		p.Fits = memkit.Fits(fp, sc.System.Accel, sc.MemoryReserve)
	}
}

// SortByTime orders points fastest-first (infeasible and failed points
// last), stable across equal times by the point's string identity. The rank
// key is the expected total time — TotalTime inflated by the scenario's
// failure overhead — so a reliability-enabled sweep prefers the mapping that
// finishes first on a cluster that fails, not the one that would win on
// perfect hardware. Without a reliability spec the two are identical.
func SortByTime(points []Point) {
	sort.SliceStable(points, func(i, j int) bool {
		pi, pj := points[i], points[j]
		oi, oj := pointOrder(pi), pointOrder(pj)
		if oi != oj {
			return oi < oj
		}
		if oi != 0 {
			return pi.String() < pj.String()
		}
		ti := float64(pi.Breakdown.ExpectedTotalTime())
		tj := float64(pj.Breakdown.ExpectedTotalTime())
		if ti != tj {
			return ti < tj
		}
		return pi.String() < pj.String()
	})
}

// pointOrder buckets points: evaluable+fits, evaluable, failed.
func pointOrder(p Point) int {
	switch {
	case p.Err != nil:
		return 2
	case !p.Fits:
		return 1
	default:
		return 0
	}
}

// Best returns the fastest feasible point by expected total time (see
// SortByTime), or nil when none evaluated.
func Best(points []Point) *Point {
	var best *Point
	for i := range points {
		p := &points[i]
		if p.Err != nil || !p.Fits || p.Breakdown == nil {
			continue
		}
		if best == nil || p.Breakdown.ExpectedTotalTime() < best.Breakdown.ExpectedTotalTime() {
			best = p
		}
	}
	return best
}

// FilterBatch returns the subset of points with the given global batch, in
// their existing order.
func FilterBatch(points []Point, batch int) []Point {
	var out []Point
	for _, p := range points {
		if p.Batch == batch {
			out = append(out, p)
		}
	}
	return out
}
