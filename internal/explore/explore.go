// Package explore is AMPeD's design-space exploration engine: it sweeps
// parallelism mappings and batch sizes over a scenario (model + system +
// training recipe), evaluates every point with the analytical model
// concurrently, filters memory-infeasible points, and ranks the survivors.
// Case Studies I–III of the paper are thin drivers over this package.
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amped/internal/efficiency"
	"amped/internal/hardware"
	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// Scenario fixes everything a sweep does not vary.
type Scenario struct {
	// Name labels the sweep in reports.
	Name string
	// Model is the transformer architecture.
	Model *transformer.Model
	// System is the machine.
	System *hardware.System
	// Training carries the recipe knobs; Batch.Global and
	// Batch.Microbatches are overridden per point.
	Training model.Training
	// Eff is the microbatch-efficiency model (nil = efficiency.Default).
	Eff efficiency.Model
	// Memory, when non-nil, enables the feasibility filter.
	Memory *memkit.Config
	// MemoryReserve is the fraction of device memory held back for
	// framework overhead when filtering (e.g. 0.1).
	MemoryReserve float64
	// Session, when non-nil, supplies a pre-compiled session and the sweep
	// skips model.Compile; the session's own model, system, training recipe
	// and efficiency model override the fields above so the two can never
	// disagree. The sweep leaves a supplied session untouched (no Prepare),
	// so one cached session can serve any number of concurrent sweeps —
	// the serving layer's session-cache path.
	Session *model.Session
}

// Options selects what the sweep varies.
type Options struct {
	// Mappings lists explicit mappings to evaluate. Empty means enumerate
	// all mappings valid for the system via Enumerate.
	Mappings []parallel.Mapping
	// Enumerate configures the enumeration when Mappings is empty. MaxTP
	// and MaxPP default to the model's head and layer counts.
	Enumerate parallel.EnumerateOptions
	// Batches lists the global batch sizes to sweep (required).
	Batches []int
	// MicrobatchTarget sets the preferred microbatch size; the sweep picks
	// N_ub as the divisor of the per-replica batch nearest
	// perReplica/target, at least the pipeline depth so the pipeline can
	// fill. Zero keeps the scenario's Batch.Microbatches (or its default).
	MicrobatchTarget int
	// Concurrency bounds parallel evaluations (default: GOMAXPROCS).
	Concurrency int
	// KeepInvalid retains points whose evaluation failed (Err set) instead
	// of dropping them.
	KeepInvalid bool
	// Progress, when non-nil, receives live sweep instrumentation: points
	// laid out, claimed by workers, completed and failed, plus the
	// cooperative-cancel latency. Counters are atomic, so a monitor
	// goroutine (amped-explore's -progress flag, the serving layer's
	// metrics) can read them while the sweep runs.
	Progress *Progress
}

// Progress is a sweep's live instrumentation, updated atomically by the
// worker pool and readable from any goroutine while the sweep runs. The
// zero value is ready to use; pass one in Options.Progress.
type Progress struct {
	// Total is the number of points laid out for evaluation.
	Total atomic.Int64
	// Claimed counts points handed to workers (chunk granularity: a chunk's
	// points are all claimed at once when a worker takes the chunk).
	Claimed atomic.Int64
	// Completed counts points whose evaluation finished (success or error).
	Completed atomic.Int64
	// Failed counts completed points whose evaluation set Err — including
	// points pre-marked infeasible at layout time.
	Failed atomic.Int64
	// CancelLatencyNanos is the delay between context cancellation and the
	// last worker stopping — the cooperative-cancel latency (zero when the
	// sweep was never cancelled).
	CancelLatencyNanos atomic.Int64
}

// Point is one evaluated design point.
type Point struct {
	// Mapping and Batch identify the point.
	Mapping parallel.Mapping
	Batch   int
	// Microbatches is the N_ub the sweep chose.
	Microbatches int
	// Breakdown is the model's output (nil if Err is set).
	Breakdown *model.Breakdown
	// Footprint is the per-accelerator memory estimate when the scenario
	// enables the memory model.
	Footprint *memkit.Footprint
	// Fits reports the memory feasibility check (true when not checked).
	Fits bool
	// Err records an evaluation failure (invalid mapping/batch combos).
	Err error

	// chosenNub is the raw Microbatches value handed to the evaluator
	// (0 = derive the default); Microbatches above is the resolved N_ub.
	chosenNub int
}

// String identifies the point.
func (p Point) String() string {
	return fmt.Sprintf("%v B=%d m=%d", p.Mapping, p.Batch, p.Microbatches)
}

// MicrobatchFeasible reports whether any microbatch schedule can satisfy
// N_ub >= pp for the per-replica batch: N_ub divides perReplica and a
// microbatch holds at least one sequence, so N_ub <= perReplica — when the
// pipeline is deeper than the per-replica batch no divisor qualifies and
// the pipeline can never fill. Sweeps mark such cells infeasible instead
// of silently evaluating a schedule that violates the N_ub >= N_PP
// contract (the model's Eq. 8 bubble term assumes a fillable pipeline).
func MicrobatchFeasible(perReplica, pp int) bool {
	return perReplica > 0 && pp <= perReplica
}

// ChooseMicrobatches picks N_ub for a per-replica batch: the divisor of
// perReplica closest to perReplica/target (i.e. microbatch size closest to
// target), but at least the pipeline depth pp so every stage can be busy.
//
// The "at least pp" guarantee only holds when a qualifying divisor exists,
// i.e. when MicrobatchFeasible(perReplica, pp): N_ub divides perReplica,
// so pp > perReplica leaves no valid choice and the function falls back to
// perReplica itself (microbatch 1) — a schedule that cannot fill the
// pipeline. Callers that enumerate mappings (the sweep) must treat that
// case as infeasible rather than evaluating the fallback.
//
// The candidates come from the memoized O(√n) divisor table; ties keep the
// smallest divisor, matching the historical ascending scan.
func ChooseMicrobatches(perReplica, pp, target int) int {
	if perReplica <= 0 {
		return 1
	}
	if pp > perReplica {
		return perReplica
	}
	if target <= 0 {
		target = 1
	}
	want := perReplica / target
	if want < pp {
		want = pp
	}
	best := perReplica
	bestDist := perReplica
	for _, d := range parallel.Divisors(perReplica) {
		if d < pp {
			continue
		}
		dist := d - want
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			best, bestDist = d, dist
		}
	}
	return best
}

// Sweep evaluates every (mapping, batch) combination and returns the points
// in deterministic (mapping-major, batch-minor) order.
func Sweep(sc Scenario, opt Options) ([]Point, error) {
	return SweepContext(context.Background(), sc, opt)
}

// SweepContext is Sweep with cooperative cancellation: workers check the
// context at chunk boundaries (every chunkSize points), so a cancelled or
// timed-out sweep stops within one chunk's worth of evaluations per worker
// and returns the context's error. Points completed before cancellation
// are returned alongside that error — explicitly labeled partial work, so
// a deadline-bound caller (the serving layer's 206 path) can hand back
// what finished instead of discarding it. Callers that must not act on a
// partial design space simply treat err != nil as fatal; the non-nil error
// makes the truncation impossible to miss.
func SweepContext(ctx context.Context, sc Scenario, opt Options) ([]Point, error) {
	if sc.Session != nil {
		// The compiled session is the source of truth for everything it
		// captured at Compile time.
		sc.Model = sc.Session.Model()
		sc.System = sc.Session.System()
		sc.Training = sc.Session.Training()
		sc.Eff = sc.Session.Eff()
	}
	if sc.Model == nil || sc.System == nil {
		return nil, errors.New("explore: scenario needs a model and a system")
	}
	if len(opt.Batches) == 0 {
		return nil, errors.New("explore: no batch sizes to sweep")
	}
	mappings := opt.Mappings
	if len(mappings) == 0 {
		en := opt.Enumerate
		if en.MaxTP == 0 {
			en.MaxTP = sc.Model.Heads
		}
		if en.MaxPP == 0 {
			en.MaxPP = sc.Model.Layers
		}
		mappings = parallel.Enumerate(sc.System, en)
	}
	if len(mappings) == 0 {
		return nil, errors.New("explore: no mappings to evaluate")
	}
	eff := sc.Eff
	if eff == nil {
		eff = efficiency.Default()
	}

	// Compile the scenario once: invariants validated, Eq. 3–4 constants
	// hoisted, per-batch op aggregates cached — every worker then evaluates
	// points in O(1) with zero allocations on the hot path. A supplied
	// session skips both Compile and Prepare: it may be shared with other
	// sweeps running right now, and Prepare is single-writer. Unprepared
	// batches memoize safely through the session's side table.
	sess := sc.Session
	if sess == nil {
		var err error
		sess, err = model.Compile(sc.Model, sc.System, sc.Training, eff)
		if err != nil {
			return nil, err
		}
		sess.Prepare(opt.Batches...)
	}

	// Lay out the cells and pick each point's microbatch schedule up front.
	// The (perReplica, pp) → N_ub choice repeats across mappings sharing
	// degrees, so it is memoized; doing it serially here keeps the worker
	// pool read-only over shared state.
	points := make([]Point, len(mappings)*len(opt.Batches))
	nubMemo := make(map[[2]int]int)
	idx := 0
	for _, mp := range mappings {
		dp, pp := mp.DP(), mp.PP()
		for _, b := range opt.Batches {
			p := Point{Mapping: mp, Batch: b, Fits: true}
			nub := sc.Training.Batch.Microbatches
			// Only dividing cells get a schedule chosen (and memoized):
			// b/dp truncates otherwise, and the truncated per-replica batch
			// would pick an N_ub for a cell that does not exist. The
			// non-dividing cell keeps the scenario's schedule and is
			// rejected by Batch.Validate during evaluation.
			if opt.MicrobatchTarget > 0 && b%dp == 0 {
				per := b / dp
				if !MicrobatchFeasible(per, pp) {
					// No divisor of per satisfies N_ub >= pp: the pipeline
					// can never fill. Pre-mark the cell infeasible instead
					// of evaluating ChooseMicrobatches' fallback schedule.
					p.Microbatches = per
					p.Err = fmt.Errorf(
						"explore: %v B=%d infeasible: pipeline depth %d exceeds per-replica batch %d, no microbatch count satisfies N_ub >= N_PP",
						mp, b, pp, per)
					points[idx] = p
					idx++
					continue
				}
				key := [2]int{per, pp}
				var ok bool
				if nub, ok = nubMemo[key]; !ok {
					nub = ChooseMicrobatches(per, pp, opt.MicrobatchTarget)
					nubMemo[key] = nub
				}
			}
			p.Microbatches = parallel.Batch{Global: b, Microbatches: nub}.MicrobatchesOrDefault(mp)
			p.chosenNub = nub
			points[idx] = p
			idx++
		}
	}

	workers := opt.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prog := opt.Progress
	if prog == nil {
		prog = new(Progress) // keeps the worker loop branch-free
	}
	prog.Total.Store(int64(len(points)))

	// Timestamp the moment of cancellation (if any) so the cooperative
	// cancel latency — cancel to last-worker-stop — is measurable. The
	// stamped channel lets the post-wait path block until the stamp exists:
	// once ctx.Err() is non-nil the AfterFunc goroutine is guaranteed to be
	// scheduled, but not to have run yet.
	var cancelledAt atomic.Int64
	stamped := make(chan struct{})
	stopAfter := context.AfterFunc(ctx, func() {
		cancelledAt.Store(time.Now().UnixNano())
		close(stamped)
	})
	defer stopAfter()

	// One breakdown slot per point, allocated in a single block; workers
	// claim chunked index ranges off an atomic cursor instead of receiving
	// per-index channel sends, cutting synchronization traffic and false
	// sharing on adjacent cells.
	bds := make([]model.Breakdown, len(points))
	chunk := chunkSize(len(points), workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Cooperative cancellation, checked once per chunk claim:
				// cheap enough to leave the per-point path untouched, tight
				// enough that a cancelled sweep stops within one chunk.
				if ctx.Err() != nil {
					return
				}
				end := int(cursor.Add(int64(chunk)))
				start := end - chunk
				if start >= len(points) {
					return
				}
				if end > len(points) {
					end = len(points)
				}
				prog.Claimed.Add(int64(end - start))
				for i := start; i < end; i++ {
					// Cells pre-marked at layout time (infeasible
					// microbatch schedule) are already decided; evaluating
					// them would overwrite the diagnosis.
					if points[i].Err == nil {
						evalPointSafe(&points[i], &bds[i], sess, &sc)
					}
					prog.Completed.Add(1)
					if points[i].Err != nil {
						prog.Failed.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	cancelled := ctx.Err()
	if cancelled != nil {
		<-stamped
		lat := time.Now().UnixNano() - cancelledAt.Load()
		if lat < 1 {
			lat = 1 // a cancel observed faster than the clock tick still counts
		}
		prog.CancelLatencyNanos.Store(lat)
		// Keep only cells that actually finished (evaluated, or decided at
		// layout time); unclaimed cells are still zero-valued and must not
		// masquerade as results.
		done := points[:0]
		for _, p := range points {
			if p.Err != nil || p.Breakdown != nil {
				done = append(done, p)
			}
		}
		points = done
	}

	if !opt.KeepInvalid {
		kept := points[:0]
		for _, p := range points {
			if p.Err == nil {
				kept = append(kept, p)
			}
		}
		points = kept
	}
	return points, cancelled
}

// chunkSize sizes worker chunks: enough chunks per worker for load balance
// (expensive deep-pipeline cells cluster together in the mapping order),
// but at least a cache line's worth of points per claim.
func chunkSize(n, workers int) int {
	c := n / (workers * 8)
	if c < 4 {
		c = 4
	}
	return c
}

// evalPointSafe evaluates one sweep cell, converting a panicking evaluation
// (a degenerate user-supplied efficiency model, an eventsim guard trip) into
// that point's Err instead of killing the process — one poisoned cell must
// not take down a long-running sweep service.
func evalPointSafe(p *Point, bd *model.Breakdown, sess *model.Session, sc *Scenario) {
	defer func() {
		if r := recover(); r != nil {
			p.Breakdown = nil
			p.Footprint = nil
			p.Err = fmt.Errorf("explore: panic evaluating %v B=%d m=%d: %v",
				p.Mapping, p.Batch, p.Microbatches, r)
		}
	}()
	evalPoint(p, bd, sess, sc)
}

// evalPoint evaluates one sweep cell in place against the shared session.
func evalPoint(p *Point, bd *model.Breakdown, sess *model.Session, sc *Scenario) {
	if err := sess.EvaluatePoint(p.Mapping, p.Batch, p.chosenNub, bd); err != nil {
		p.Err = err
		return
	}
	p.Breakdown = bd
	if sc.Memory != nil {
		batch := parallel.Batch{Global: p.Batch, Microbatches: p.chosenNub}
		fp, err := memkit.Estimate(sc.Model, p.Mapping, batch, *sc.Memory)
		if err != nil {
			p.Err = err
			return
		}
		p.Footprint = &fp
		p.Fits = memkit.Fits(fp, sc.System.Accel, sc.MemoryReserve)
	}
}

// SortByTime orders points fastest-first (infeasible and failed points
// last), stable across equal times by the point's string identity. The rank
// key is the expected total time — TotalTime inflated by the scenario's
// failure overhead — so a reliability-enabled sweep prefers the mapping that
// finishes first on a cluster that fails, not the one that would win on
// perfect hardware. Without a reliability spec the two are identical.
func SortByTime(points []Point) {
	sort.SliceStable(points, func(i, j int) bool {
		pi, pj := points[i], points[j]
		oi, oj := pointOrder(pi), pointOrder(pj)
		if oi != oj {
			return oi < oj
		}
		if oi != 0 {
			return pi.String() < pj.String()
		}
		ti := float64(pi.Breakdown.ExpectedTotalTime())
		tj := float64(pj.Breakdown.ExpectedTotalTime())
		if ti != tj {
			return ti < tj
		}
		return pi.String() < pj.String()
	})
}

// pointOrder buckets points: evaluable+fits, evaluable, failed.
func pointOrder(p Point) int {
	switch {
	case p.Err != nil:
		return 2
	case !p.Fits:
		return 1
	default:
		return 0
	}
}

// Best returns the fastest feasible point by expected total time (see
// SortByTime), or nil when none evaluated.
func Best(points []Point) *Point {
	var best *Point
	for i := range points {
		p := &points[i]
		if p.Err != nil || !p.Fits || p.Breakdown == nil {
			continue
		}
		if best == nil || p.Breakdown.ExpectedTotalTime() < best.Breakdown.ExpectedTotalTime() {
			best = p
		}
	}
	return best
}

// FilterBatch returns the subset of points with the given global batch, in
// their existing order.
func FilterBatch(points []Point, batch int) []Point {
	var out []Point
	for _, p := range points {
		if p.Batch == batch {
			out = append(out, p)
		}
	}
	return out
}
