package explore

import (
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// TestChunkSize pins the adaptive chunked-claim sizing for the batched
// evaluation path: chunks never shrink below the amortization floor (so
// per-chunk overhead stays under 1% of chunk evaluation time), grow with
// the sweep, cap at the ceiling so cancellation latency stays bounded —
// and never exceed the space itself. Shard subranges smaller than the
// clamp floor (a coordinator dealing exact remainders over CursorLo/Hi)
// must get one exact-fit chunk, not an overshooting claim; degenerate
// shapes (n <= 0, workers <= 0) must resolve to a positive chunk the
// cursor loop can terminate on.
func TestChunkSize(t *testing.T) {
	cases := []struct {
		name             string
		n, workers, want int
	}{
		{"tiny subrange, exact-fit chunk", 1, 8, 1},
		{"n < workers", 16, 64, 16},
		{"n == 0", 0, 8, 1},
		{"negative n", -5, 8, 1},
		{"subrange just below the floor", minChunk - 1, 8, minChunk - 1},
		{"subrange exactly the floor", minChunk, 8, minChunk},
		{"subrange just above the floor", minChunk + 1, 8, minChunk},
		{"small sweep stays at floor", 3200, 8, minChunk},
		{"single worker small space", 64, 1, 64},
		{"workers <= 0 treated as one", 100, 0, 100},
		{"interior: grows with the sweep", 200_000, 8, 3125},
		{"huge sweep hits the ceiling", 1 << 20, 8, maxChunk},
		{"huge sweep, single worker, still capped", 1 << 20, 1, maxChunk},
	}
	for _, c := range cases {
		got := chunkSize(c.n, c.workers)
		if got != c.want {
			t.Errorf("%s: chunkSize(%d, %d) = %d, want %d", c.name, c.n, c.workers, got, c.want)
		}
		if got < 1 {
			t.Errorf("%s: chunkSize(%d, %d) = %d, not positive", c.name, c.n, c.workers, got)
		}
		if c.n > 0 && got > c.n {
			t.Errorf("%s: chunkSize(%d, %d) = %d overshoots the space", c.name, c.n, c.workers, got)
		}
		if got > maxChunk {
			t.Errorf("%s: chunkSize(%d, %d) = %d above the ceiling", c.name, c.n, c.workers, got)
		}
	}
}

// TestChunkSizeClaimWalk replays the worker pool's atomic-cursor claim
// pattern over the boundary space sizes: for every n around the clamp
// floor, the claimed [start, end) windows must tile [0, n) exactly once
// with no empty and no overshooting chunk before the end-clamp.
func TestChunkSizeClaimWalk(t *testing.T) {
	for _, n := range []int{1, 2, minChunk - 1, minChunk, minChunk + 1, 2*minChunk - 1, 1000} {
		for _, workers := range []int{1, 4, 16} {
			chunk := chunkSize(n, workers)
			if chunk < 1 || chunk > n {
				t.Fatalf("n=%d workers=%d: chunk %d outside [1, n]", n, workers, chunk)
			}
			covered := 0
			cursor := 0
			for {
				end := cursor + chunk
				cursor = end
				start := end - chunk
				if start >= n {
					break
				}
				if end > n {
					end = n
				}
				if end <= start {
					t.Fatalf("n=%d workers=%d: empty chunk [%d, %d)", n, workers, start, end)
				}
				covered += end - start
			}
			if covered != n {
				t.Fatalf("n=%d workers=%d chunk=%d: claims covered %d cells", n, workers, chunk, covered)
			}
		}
	}
}

// TestSweepChunkedPoolShapes drives the chunked worker pool through the
// awkward shapes: more workers than points, odd point counts that leave a
// partial trailing chunk, and single-worker serial execution. Every cell
// must be evaluated exactly once (asserted by comparing against a serial
// reference sweep). Run under -race this also proves the pool's index
// claims never overlap.
func TestSweepChunkedPoolShapes(t *testing.T) {
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	sc := Scenario{Model: &m, System: &sys, Training: model.Training{NumBatches: 10}}
	base := Options{
		Batches:          []int{4096, 8192, 16384},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 128,
		KeepInvalid:      true, // fixed length: every cell accounted for
	}
	ref, err := Sweep(sc, withConcurrency(base, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("empty reference sweep")
	}
	for _, workers := range []int{2, 3, 7, 64, len(ref) + 13} {
		got, err := Sweep(sc, withConcurrency(base, workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].String() != ref[i].String() {
				t.Fatalf("workers=%d: point %d is %v, want %v", workers, i, got[i], ref[i])
			}
			if (got[i].Breakdown == nil) != (ref[i].Breakdown == nil) {
				t.Fatalf("workers=%d: point %d breakdown presence differs", workers, i)
			}
			if got[i].Breakdown != nil && *got[i].Breakdown != *ref[i].Breakdown {
				t.Fatalf("workers=%d: point %d breakdown differs", workers, i)
			}
		}
	}
}

func withConcurrency(o Options, n int) Options {
	o.Concurrency = n
	return o
}

// TestSweepMatchesEstimator cross-checks the session-backed sweep against
// per-point Estimator.Evaluate calls — the end-to-end guarantee that the
// compiled fast path changes performance, not results.
func TestSweepMatchesEstimator(t *testing.T) {
	m := transformer.GLaM()
	sys := hardware.CaseStudy1System()
	sc := Scenario{Model: &m, System: &sys, Training: model.Training{NumBatches: 5}}
	pts, err := Sweep(sc, Options{
		Batches:          []int{4096},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true, ExpertParallel: true},
		MicrobatchTarget: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		est := model.Estimator{
			Model: &m, System: &sys, Mapping: p.Mapping,
			Training: sc.Training,
		}
		est.Training.Batch = parallel.Batch{Global: p.Batch, Microbatches: p.Microbatches}
		want, err := est.Evaluate()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if *p.Breakdown != *want {
			t.Fatalf("%v: sweep breakdown differs from Estimator.Evaluate", p)
		}
	}
}

// TestSweepMicrobatchMemo asserts the memoized N_ub choice matches a direct
// ChooseMicrobatches call for every point.
func TestSweepMicrobatchMemo(t *testing.T) {
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	sc := Scenario{Model: &m, System: &sys}
	pts, err := Sweep(sc, Options{
		Batches:          []int{8192, 12288}, // non-pow2 batch too
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 128,
		KeepInvalid:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Err != nil {
			continue
		}
		per := p.Batch / p.Mapping.DP()
		want := ChooseMicrobatches(per, p.Mapping.PP(), 128)
		got := parallel.Batch{Global: p.Batch, Microbatches: want}.MicrobatchesOrDefault(p.Mapping)
		if p.Microbatches != got {
			t.Fatalf("%v: N_ub %d, want %d", p, p.Microbatches, got)
		}
	}
}
