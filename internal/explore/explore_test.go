package explore

import (
	"testing"

	"amped/internal/hardware"
	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/precision"
	"amped/internal/transformer"
)

func cs1Scenario() Scenario {
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	return Scenario{
		Name:     "case-study-1",
		Model:    &m,
		System:   &sys,
		Training: model.Training{NumBatches: 100},
	}
}

func TestChooseMicrobatches(t *testing.T) {
	cases := []struct {
		per, pp, target, want int
	}{
		{128, 1, 128, 1}, // one microbatch of 128
		{128, 1, 32, 4},  // 4 microbatches of 32
		{128, 8, 32, 8},  // pipeline depth wins over target
		{128, 8, 128, 8}, // still at least pp
		{8192, 64, 128, 64},
		{8192, 2, 32, 256},
		{100, 8, 32, 10}, // divisors of 100 >= 8: want near 3 -> 10
		{4, 16, 32, 4},   // pp exceeds per-replica batch: infeasible fallback
		{1, 1, 32, 1},    // perReplica == 1, depth-1 pipeline: feasible
		{1, 2, 8, 1},     // perReplica == 1, deeper pipeline: infeasible fallback
		{0, 4, 8, 1},
		{128, 1, 0, 128}, // target 0 -> microbatch 1
	}
	for _, c := range cases {
		if got := ChooseMicrobatches(c.per, c.pp, c.target); got != c.want {
			t.Errorf("ChooseMicrobatches(%d, %d, %d) = %d, want %d",
				c.per, c.pp, c.target, got, c.want)
		}
	}
	// The result always divides the per-replica batch (or equals it).
	for per := 1; per <= 64; per++ {
		for pp := 1; pp <= 8; pp++ {
			got := ChooseMicrobatches(per, pp, 16)
			if per%got != 0 {
				t.Fatalf("ChooseMicrobatches(%d,%d,16)=%d does not divide", per, pp, got)
			}
		}
	}
}

func TestSweepEnumerates(t *testing.T) {
	sc := cs1Scenario()
	pts, err := Sweep(sc, Options{
		Batches:          []int{8192},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points survived")
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %v failed: %v", p, p.Err)
		}
		if p.Breakdown == nil {
			t.Fatalf("point %v has no breakdown", p)
		}
		if p.Mapping.TP() > sc.Model.Heads || p.Mapping.PP() > sc.Model.Layers {
			t.Fatalf("enumeration ignored model caps: %v", p)
		}
	}
}

func TestSweepDeterministicOrder(t *testing.T) {
	sc := cs1Scenario()
	opt := Options{
		Batches:          []int{4096, 8192},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 128,
		Concurrency:      4,
	}
	a, err := Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].Breakdown.TotalTime() != b[i].Breakdown.TotalTime() {
			t.Fatalf("times differ at %d", i)
		}
	}
}

func TestBestPrefersTPIntraDPInter(t *testing.T) {
	// Case Study I conclusion ⑤: TP intra-node with DP/PP inter-node wins.
	sc := cs1Scenario()
	pts, err := Sweep(sc, Options{
		Batches:          []int{16384},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := Best(pts)
	if best == nil {
		t.Fatal("no best point")
	}
	if best.Mapping.TPIntra < 2 {
		t.Errorf("best mapping %v does not use intra-node TP", best.Mapping)
	}
	if best.Mapping.TPInter != 1 {
		t.Errorf("best mapping %v uses inter-node TP", best.Mapping)
	}
}

func TestExplicitMappingsAndInvalid(t *testing.T) {
	sc := cs1Scenario()
	maps := []parallel.Mapping{
		{TPIntra: 8, DPInter: 128},
		{TPIntra: 8, TPInter: 128}, // TP 1024 > 96 heads: invalid
	}
	pts, err := Sweep(sc, Options{Mappings: maps, Batches: []int{8192}, MicrobatchTarget: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("invalid point not dropped: %d points", len(pts))
	}
	kept, err := Sweep(sc, Options{
		Mappings: maps, Batches: []int{8192}, MicrobatchTarget: 128, KeepInvalid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Fatalf("KeepInvalid dropped points: %d", len(kept))
	}
	if kept[1].Err == nil {
		t.Error("invalid point has no error")
	}
}

func TestSortByTimeOrdering(t *testing.T) {
	sc := cs1Scenario()
	pts, err := Sweep(sc, Options{
		Mappings: []parallel.Mapping{
			{TPIntra: 8, DPInter: 128},
			{TPIntra: 8, TPInter: 2, DPInter: 64},
			{TPIntra: 8, PPInter: 2, DPInter: 64},
			{TPIntra: 8, TPInter: 128}, // invalid
		},
		Batches: []int{16384}, MicrobatchTarget: 128, KeepInvalid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	SortByTime(pts)
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Err == nil && b.Err == nil {
			if a.Breakdown.TotalTime() > b.Breakdown.TotalTime() {
				t.Fatalf("not sorted at %d", i)
			}
		}
	}
	if pts[len(pts)-1].Err == nil {
		t.Error("failed point not sorted last")
	}
}

func TestMemoryFiltering(t *testing.T) {
	sc := cs1Scenario()
	// Realistic large-model recipe: activation checkpointing, 1F1B, tiny
	// microbatches — the setup under which TP8·PP8 sharding fits an 80 GB
	// A100 while a full DP replica never can.
	sc.Memory = &memkit.Config{
		Operands:      precision.Mixed16(),
		Optimizer:     memkit.Adam,
		Checkpointing: true,
		Schedule:      memkit.OneFOneB,
	}
	sc.MemoryReserve = 0.1
	pts, err := Sweep(sc, Options{
		Mappings: []parallel.Mapping{
			{TPIntra: 8, PPInter: 8, DPInter: 16}, // 145B/64-way sharding: fits
			{DPIntra: 8, DPInter: 128},            // full replica per GPU: cannot fit
		},
		Batches: []int{8192}, MicrobatchTarget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	byFit := map[bool]int{}
	for _, p := range pts {
		if p.Footprint == nil {
			t.Fatalf("point %v missing footprint", p)
		}
		byFit[p.Fits]++
	}
	if byFit[true] != 1 || byFit[false] != 1 {
		t.Errorf("fit split = %v, want one each", byFit)
	}
	best := Best(pts)
	if best == nil || !best.Fits {
		t.Error("Best returned an infeasible point")
	}
}

func TestSweepErrors(t *testing.T) {
	sc := cs1Scenario()
	if _, err := Sweep(Scenario{}, Options{Batches: []int{8}}); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := Sweep(sc, Options{}); err == nil {
		t.Error("no batches accepted")
	}
}

func TestFilterBatch(t *testing.T) {
	pts := []Point{{Batch: 4096}, {Batch: 8192}, {Batch: 4096}}
	got := FilterBatch(pts, 4096)
	if len(got) != 2 {
		t.Errorf("FilterBatch = %d points", len(got))
	}
	if FilterBatch(pts, 1) != nil {
		t.Error("missing batch returned points")
	}
}

func TestBestEmpty(t *testing.T) {
	if Best(nil) != nil {
		t.Error("Best(nil) != nil")
	}
	if Best([]Point{{Err: nil, Fits: false}}) != nil {
		t.Error("Best returned unfit point")
	}
}

func TestParetoTimeEnergy(t *testing.T) {
	sc := cs1Scenario()
	sc.Training.NumBatches = 1000
	pts, err := Sweep(sc, Options{
		Mappings: []parallel.Mapping{
			{TPIntra: 8, DPInter: 128},            // fast, no bubbles
			{TPIntra: 8, PPInter: 64, DPInter: 2}, // slower, idles in bubbles
			{TPIntra: 8, TPInter: 2, DPInter: 64}, // slower, no bubbles
		},
		Batches: []int{16384}, MicrobatchTarget: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoTimeEnergy(pts, sc.System)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// Fastest-first and strictly improving energy along the front.
	for i := 1; i < len(front); i++ {
		if front[i].Breakdown.TotalTime() <= front[i-1].Breakdown.TotalTime() {
			t.Errorf("front not time-sorted at %d", i)
		}
		if front[i].Energy.Total() >= front[i-1].Energy.Total() {
			t.Errorf("front point %d not energy-improving", i)
		}
	}
	// The fastest feasible point always survives.
	if best := Best(pts); best != nil &&
		front[0].Breakdown.TotalTime() != best.Breakdown.TotalTime() {
		t.Error("fastest point missing from the front")
	}
	// Degenerate inputs.
	empty, err := ParetoTimeEnergy(nil, sc.System)
	if err != nil || empty != nil {
		t.Errorf("nil points front = %v, %v", empty, err)
	}
}
