package explore

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// panicEff is a deliberately degenerate efficiency model: it panics after
// `fuse` evaluations (fuse < 0 panics always). It reproduces the class of
// failure the sweep must survive — user-supplied efficiency models run
// arbitrary code inside the worker pool.
type panicEff struct{ fuse int64 }

func (p *panicEff) Eff(ub float64) float64 {
	if n := atomic.AddInt64(&p.fuse, -1); n < 0 {
		panic("panicEff: deliberate test panic")
	}
	return 0.5
}

func robustScenario(t *testing.T) Scenario {
	t.Helper()
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	return Scenario{Model: &m, System: &sys, Training: model.Training{NumBatches: 1}}
}

var robustOptions = Options{
	Batches:          []int{4096, 8192},
	Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
	MicrobatchTarget: 128,
	KeepInvalid:      true,
}

func TestSweepRecoversPanickingEfficiencyModel(t *testing.T) {
	// A panicking evaluation must land in Point.Err with the cell identity
	// — not kill the process. Every worker hits it, so this also proves the
	// pool survives panics on all goroutines at once.
	sc := robustScenario(t)
	sc.Eff = &panicEff{fuse: -1}
	points, err := Sweep(sc, robustOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points returned")
	}
	for _, p := range points {
		if p.Err == nil {
			t.Fatalf("point %v evaluated despite panicking efficiency model", p)
		}
		msg := p.Err.Error()
		if !strings.Contains(msg, "panic") || !strings.Contains(msg, "deliberate test panic") {
			t.Fatalf("panic not captured in error: %v", p.Err)
		}
		// The cell identity must be recoverable from the error alone.
		if !strings.Contains(msg, p.Mapping.String()) || !strings.Contains(msg, "B=") {
			t.Fatalf("error lacks cell identity: %v", p.Err)
		}
		if p.Breakdown != nil {
			t.Fatalf("panicked point kept a breakdown: %v", p)
		}
	}

	// Dropping invalid points filters the poisoned cells without error.
	opt := robustOptions
	opt.KeepInvalid = false
	points, err = Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatalf("poisoned cells survived the filter: %d points", len(points))
	}
}

func TestSweepRecoversPartialPanics(t *testing.T) {
	// Only some cells panic: the rest of the sweep must still evaluate.
	sc := robustScenario(t)
	sc.Eff = &panicEff{fuse: 25}
	points, err := Sweep(sc, robustOptions)
	if err != nil {
		t.Fatal(err)
	}
	var ok, panicked int
	for _, p := range points {
		switch {
		case p.Err == nil:
			ok++
		case strings.Contains(p.Err.Error(), "panic"):
			panicked++
		}
	}
	if ok == 0 || panicked == 0 {
		t.Fatalf("want a mix of evaluated and panicked cells, got ok=%d panicked=%d of %d",
			ok, panicked, len(points))
	}
}

func TestSweepContextCancellation(t *testing.T) {
	sc := robustScenario(t)

	// Already-cancelled context: no evaluation happens and no points are
	// returned (nothing completed, so the partial set is empty).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, err := SweepContext(ctx, sc, robustOptions)
	if err != context.Canceled {
		t.Fatalf("pre-cancelled sweep returned %v, want context.Canceled", err)
	}
	if len(pts) != 0 {
		t.Fatalf("pre-cancelled sweep returned %d points, want 0", len(pts))
	}

	// Mid-sweep cancellation: the efficiency model pulls the plug after a
	// few evaluations; the sweep must stop at chunk boundaries and report
	// the context error alongside the points that completed before the
	// cancel — explicitly labeled partial work, never silently complete.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	sc.Eff = cancellingEff{cancel: cancel, after: 8, n: new(int64)}
	opt := robustOptions
	opt.Concurrency = 2
	pts, err = SweepContext(ctx, sc, opt)
	if err != context.Canceled {
		t.Fatalf("mid-sweep cancellation returned %v, want context.Canceled", err)
	}
	en := opt.Enumerate
	en.MaxTP = sc.Model.Heads
	en.MaxPP = sc.Model.Layers
	total := len(parallel.Enumerate(sc.System, en)) * len(opt.Batches)
	if len(pts) == 0 || len(pts) >= total {
		t.Fatalf("cancelled sweep returned %d of %d points, want a non-empty strict subset",
			len(pts), total)
	}
	for _, p := range pts {
		if p.Err == nil && p.Breakdown == nil {
			t.Fatalf("cancelled sweep leaked an unevaluated cell: %v", p)
		}
	}
}

// cancellingEff cancels its context after `after` evaluations.
type cancellingEff struct {
	cancel context.CancelFunc
	after  int64
	n      *int64
}

func (c cancellingEff) Eff(ub float64) float64 {
	if atomic.AddInt64(c.n, 1) == c.after {
		c.cancel()
	}
	return 0.5
}

func TestSweepSharedSession(t *testing.T) {
	// A sweep over a pre-compiled session must produce the same points as
	// one that compiles its own — and must work with the scenario's other
	// fields left empty (the serving layer only has the session).
	sc := robustScenario(t)
	want, err := Sweep(sc, robustOptions)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := model.Compile(sc.Model, sc.System, sc.Training, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Sweep(Scenario{Session: sess}, robustOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("shared-session sweep: %d points, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Mapping != w.Mapping || g.Batch != w.Batch || g.Microbatches != w.Microbatches {
			t.Fatalf("point %d identity mismatch: %v vs %v", i, g, w)
		}
		if (g.Err == nil) != (w.Err == nil) {
			t.Fatalf("point %d error mismatch: %v vs %v", i, g.Err, w.Err)
		}
		if g.Err == nil && *g.Breakdown != *w.Breakdown {
			t.Fatalf("point %d breakdown mismatch", i)
		}
	}
}
