package explore

import (
	"sort"

	"amped/internal/hardware"
	"amped/internal/power"
)

// TimeEnergyPoint is a sweep point annotated with its energy estimate.
type TimeEnergyPoint struct {
	Point
	// Energy is the training-run energy accounting.
	Energy power.Estimate
}

// ParetoTimeEnergy returns the non-dominated subset of the sweep under the
// two objectives (training time, total energy), sorted fastest-first.
// Pipeline-heavy mappings idle through bubbles at reduced power, so the
// fastest configuration is not automatically the cheapest — the trade
// Case Study II raises. Failed or infeasible points are skipped.
func ParetoTimeEnergy(points []Point, sys *hardware.System) ([]TimeEnergyPoint, error) {
	var annotated []TimeEnergyPoint
	for _, p := range points {
		if p.Err != nil || !p.Fits || p.Breakdown == nil {
			continue
		}
		en, err := power.FromBreakdown(p.Breakdown, sys)
		if err != nil {
			return nil, err
		}
		annotated = append(annotated, TimeEnergyPoint{Point: p, Energy: en})
	}
	// Stable sort plus a final identity tiebreak: points tied on both
	// objectives keep a deterministic order regardless of the (parallel)
	// sweep's annotation order, so the surviving representative of a tied
	// (time, energy) pair is always the same point.
	sort.SliceStable(annotated, func(i, j int) bool {
		ti := annotated[i].Breakdown.TotalTime()
		tj := annotated[j].Breakdown.TotalTime()
		if ti != tj {
			return ti < tj
		}
		if ei, ej := annotated[i].Energy.Total(), annotated[j].Energy.Total(); ei != ej {
			return ei < ej
		}
		return annotated[i].String() < annotated[j].String()
	})
	// Single sweep: a point survives iff its energy beats every faster
	// point's (ties on both axes keep the first).
	var front []TimeEnergyPoint
	bestEnergy := 0.0
	for i, p := range annotated {
		e := p.Energy.Total()
		if i == 0 || e < bestEnergy {
			front = append(front, p)
			bestEnergy = e
		}
	}
	return front, nil
}
