package explore

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

func TestSweepProgressCounters(t *testing.T) {
	sc := robustScenario(t)
	opt := robustOptions
	var prog Progress
	opt.Progress = &prog
	points, err := Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	total := prog.Total.Load()
	if total != int64(len(points)) {
		t.Fatalf("Total = %d, want %d (KeepInvalid sweep returns every cell)", total, len(points))
	}
	if got := prog.Claimed.Load(); got != total {
		t.Errorf("Claimed = %d, want %d", got, total)
	}
	if got := prog.Completed.Load(); got != total {
		t.Errorf("Completed = %d, want %d", got, total)
	}
	var failed int64
	for _, p := range points {
		if p.Err != nil {
			failed++
		}
	}
	if got := prog.Failed.Load(); got != failed {
		t.Errorf("Failed = %d, want %d (points with Err set)", got, failed)
	}
	if got := prog.CancelLatencyNanos.Load(); got != 0 {
		t.Errorf("CancelLatencyNanos = %d on an uncancelled sweep, want 0", got)
	}
}

func TestSweepProgressOnCancellation(t *testing.T) {
	sc := robustScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc.Eff = cancellingEff{cancel: cancel, after: 8, n: new(int64)}
	opt := robustOptions
	opt.Concurrency = 2
	var prog Progress
	opt.Progress = &prog
	points, err := SweepContext(ctx, sc, opt)
	if err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	total := prog.Total.Load()
	claimed := prog.Claimed.Load()
	completed := prog.Completed.Load()
	if completed >= total {
		t.Errorf("Completed = %d of Total = %d after cancellation, want a strict subset", completed, total)
	}
	if claimed < completed {
		t.Errorf("Claimed = %d < Completed = %d; claims happen before evaluation", claimed, completed)
	}
	if int64(len(points)) != completed {
		t.Errorf("returned %d points, Completed = %d; the partial set is exactly the completed cells",
			len(points), completed)
	}
	// context.AfterFunc stamps the cancel; the workers finish their in-flight
	// chunk afterwards, so the measured cooperative-cancel latency is positive.
	if got := prog.CancelLatencyNanos.Load(); got <= 0 {
		t.Errorf("CancelLatencyNanos = %d on a cancelled sweep, want > 0", got)
	}
}

func TestMicrobatchFeasible(t *testing.T) {
	cases := []struct {
		per, pp int
		want    bool
	}{
		{128, 8, true},
		{8, 8, true},   // N_ub = per fills the pipeline exactly
		{4, 16, false}, // pipeline deeper than the per-replica batch
		{1, 1, true},
		{1, 2, false}, // perReplica == 1 only admits a depth-1 pipeline
		{0, 1, false}, // degenerate batch
		{7, 8, false},
		{7, 7, true},
	}
	for _, c := range cases {
		if got := MicrobatchFeasible(c.per, c.pp); got != c.want {
			t.Errorf("MicrobatchFeasible(%d, %d) = %v, want %v", c.per, c.pp, got, c.want)
		}
	}
}

// tinyScenario is a machine small enough that a power-of-two enumeration
// contains pipelines deeper than a small per-replica batch: 2 nodes x 4
// accels admits PP up to 8.
func tinyScenario(t *testing.T) Scenario {
	t.Helper()
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	sys.Nodes = 2
	sys.AccelsPerNode = 4
	return Scenario{Model: &m, System: &sys, Training: model.Training{NumBatches: 1}}
}

func TestSweepMarksInfeasibleMicrobatchCells(t *testing.T) {
	sc := tinyScenario(t)
	opt := Options{
		Batches:          []int{4, 64},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 2,
		KeepInvalid:      true,
	}
	points, err := Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	var infeasible, deepOK int
	for _, p := range points {
		pp, dp := p.Mapping.PP(), p.Mapping.DP()
		if p.Batch%dp != 0 {
			continue // non-dividing cells are rejected by Batch.Validate
		}
		per := p.Batch / dp
		if pp > per {
			// The pipeline can never fill: the sweep must pre-mark the
			// cell with an explicit diagnosis, not evaluate a schedule
			// with N_ub < N_PP.
			infeasible++
			if p.Err == nil || !strings.Contains(p.Err.Error(), "infeasible") {
				t.Fatalf("cell %v (per=%d < pp=%d) not marked infeasible: err=%v", p, per, pp, p.Err)
			}
			if p.Breakdown != nil {
				t.Fatalf("infeasible cell %v kept a breakdown", p)
			}
			continue
		}
		if p.Err == nil {
			if p.Microbatches < pp {
				t.Fatalf("cell %v evaluated with N_ub=%d < N_PP=%d", p, p.Microbatches, pp)
			}
			if pp > 4 {
				deepOK = deepOK + 1
			}
		}
	}
	if infeasible == 0 {
		t.Fatal("sweep enumerated no per < pp cells; the fixture lost its point")
	}
	if deepOK == 0 {
		t.Fatal("no deep-pipeline cell evaluated at the large batch; the fixture lost its point")
	}

	// Dropping invalid points removes the infeasible cells silently-but-
	// honestly: they are gone, not evaluated under a broken schedule.
	opt.KeepInvalid = false
	points, err = Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if per := p.Batch / p.Mapping.DP(); p.Mapping.PP() > per {
			t.Fatalf("infeasible cell %v survived the KeepInvalid=false filter", p)
		}
	}
}

// TestProgressFromMonitorGoroutine reads the counters concurrently with the
// sweep, the way amped-explore's -progress flag and the serving layer do.
// Run under -race this proves the counters are safely published.
func TestProgressFromMonitorGoroutine(t *testing.T) {
	sc := robustScenario(t)
	opt := robustOptions
	var prog Progress
	opt.Progress = &prog
	stop := make(chan struct{})
	var peak atomic.Int64
	go func() {
		defer close(stop)
		for {
			c := prog.Completed.Load()
			if c > peak.Load() {
				peak.Store(c)
			}
			if t := prog.Total.Load(); t > 0 && c >= t {
				return
			}
		}
	}()
	if _, err := Sweep(sc, opt); err != nil {
		t.Fatal(err)
	}
	<-stop
	if peak.Load() != prog.Total.Load() {
		t.Fatalf("monitor observed peak %d, total %d", peak.Load(), prog.Total.Load())
	}
}
