package explore

import (
	"errors"

	"amped/internal/model"
	"amped/internal/parallel"
)

// OptimalMicrobatches tunes N_ub for the estimator's mapping and batch: it
// evaluates every divisor of the per-replica batch that can fill the
// pipeline (N_ub >= N_PP, or the whole batch when the pipeline is deeper
// than the batch) and returns the fastest choice with its breakdown.
//
// This mirrors what practitioners do on real systems — the microbatch count
// trades pipeline-bubble amortization (large N_ub) against microbatch
// efficiency (small N_ub) — and is the selection rule the case-study
// reproductions use.
func OptimalMicrobatches(est model.Estimator) (int, *model.Breakdown, error) {
	dp := est.Mapping.DP()
	if dp <= 0 || est.Training.Batch.Global <= 0 || est.Training.Batch.Global%dp != 0 {
		return 0, nil, errors.New("explore: batch does not divide the data-parallel degree")
	}
	per := est.Training.Batch.Global / dp
	pp := est.Mapping.PP()

	var candidates []int
	if pp > per {
		candidates = []int{per}
	} else {
		for _, d := range parallel.Divisors(per) {
			if d >= pp {
				candidates = append(candidates, d)
			}
		}
	}

	// All candidates share the scenario, so compile it once and reuse the
	// session (and its cached per-batch aggregates) across the divisor scan.
	sess, err := model.Compile(est.Model, est.System, est.Training, est.Eff)
	if err != nil {
		return 0, nil, err
	}
	sess.Prepare(est.Training.Batch.Global)

	bestN := 0
	var bestBD, scratch model.Breakdown
	found := false
	var firstErr error
	for _, n := range candidates {
		if err := sess.EvaluatePoint(est.Mapping, est.Training.Batch.Global, n, &scratch); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !found || scratch.PerBatch() < bestBD.PerBatch() {
			bestN, bestBD, found = n, scratch, true
		}
	}
	if !found {
		return 0, nil, firstErr
	}
	return bestN, &bestBD, nil
}
