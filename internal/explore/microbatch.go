package explore

import (
	"errors"

	"amped/internal/model"
)

// OptimalMicrobatches tunes N_ub for the estimator's mapping and batch: it
// evaluates every divisor of the per-replica batch that can fill the
// pipeline (N_ub >= N_PP, or the whole batch when the pipeline is deeper
// than the batch) and returns the fastest choice with its breakdown.
//
// This mirrors what practitioners do on real systems — the microbatch count
// trades pipeline-bubble amortization (large N_ub) against microbatch
// efficiency (small N_ub) — and is the selection rule the case-study
// reproductions use.
func OptimalMicrobatches(est model.Estimator) (int, *model.Breakdown, error) {
	dp := est.Mapping.DP()
	if dp <= 0 || est.Training.Batch.Global <= 0 || est.Training.Batch.Global%dp != 0 {
		return 0, nil, errors.New("explore: batch does not divide the data-parallel degree")
	}
	per := est.Training.Batch.Global / dp
	pp := est.Mapping.PP()

	var candidates []int
	if pp > per {
		candidates = []int{per}
	} else {
		for d := 1; d <= per; d++ {
			if per%d == 0 && d >= pp {
				candidates = append(candidates, d)
			}
		}
	}

	bestN := 0
	var bestBD *model.Breakdown
	var firstErr error
	for _, n := range candidates {
		e := est
		e.Training.Batch.Microbatches = n
		bd, err := e.Evaluate()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if bestBD == nil || bd.PerBatch() < bestBD.PerBatch() {
			bestN, bestBD = n, bd
		}
	}
	if bestBD == nil {
		return 0, nil, firstErr
	}
	return bestN, bestBD, nil
}
