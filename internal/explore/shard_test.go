package explore

import (
	"math/rand"
	"sort"
	"testing"

	"amped/internal/parallel"
)

// TestShardPartitionDeterminism is the shard-boundary determinism property:
// any partition of the canonical cell enumeration [0, total) into disjoint
// cursor ranges must reproduce, cell for cell, exactly what the whole-space
// sweep produces — the same point set with bit-identical times — and the
// per-shard top-N truncation a distributed coordinator performs must merge
// back into the whole-space top-N. The partitions are random (seeded, so a
// failure replays) and evaluated in shuffled order to mimic shards landing
// on different replicas at different times.
func TestShardPartitionDeterminism(t *testing.T) {
	sc := cs1Scenario()
	opt := Options{
		Batches:          []int{4096, 8192},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: 128,
		KeepInvalid:      true, // failures must shard deterministically too
	}
	total, err := Cells(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if total < 16 {
		t.Fatalf("scenario too small to partition meaningfully: %d cells", total)
	}

	whole, err := Sweep(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := pointTimes(t, whole)
	const top = 10
	SortByTime(whole)
	wantTop := pointIDs(whole[:top])

	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		// Random cut points partition [0, total) into 1..9 contiguous
		// half-open ranges covering every cell exactly once.
		nCuts := rng.Intn(9)
		cuts := map[int64]bool{}
		for len(cuts) < nCuts {
			cuts[1+rng.Int63n(total-1)] = true
		}
		bounds := []int64{0}
		for c := range cuts {
			bounds = append(bounds, c)
		}
		bounds = append(bounds, total)
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

		type shard struct{ lo, hi int64 }
		shards := make([]shard, 0, len(bounds)-1)
		for i := 1; i < len(bounds); i++ {
			shards = append(shards, shard{bounds[i-1], bounds[i]})
		}
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })

		var union []Point
		var candidates []Point
		for _, sh := range shards {
			o := opt
			o.CursorLo, o.CursorHi = sh.lo, sh.hi
			pts, err := Sweep(sc, o)
			if err != nil {
				t.Fatalf("trial %d shard [%d,%d): %v", trial, sh.lo, sh.hi, err)
			}
			union = append(union, pts...)
			// What a coordinator receives: each shard's own top-N.
			SortByTime(pts)
			if len(pts) > top {
				pts = pts[:top]
			}
			candidates = append(candidates, pts...)
		}

		gotTimes := pointTimes(t, union)
		if len(gotTimes) != len(wantTimes) {
			t.Fatalf("trial %d (%d shards): union has %d points, whole sweep %d",
				trial, len(shards), len(gotTimes), len(wantTimes))
		}
		for id, want := range wantTimes {
			got, ok := gotTimes[id]
			if !ok {
				t.Fatalf("trial %d: point %q missing from sharded union", trial, id)
			}
			if got != want {
				t.Fatalf("trial %d: point %q time %v != whole-space %v", trial, id, got, want)
			}
		}

		SortByTime(candidates)
		if len(candidates) > top {
			candidates = candidates[:top]
		}
		gotTop := pointIDs(candidates)
		for i := range wantTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("trial %d: merged top-%d diverges at %d: %q != %q",
					trial, top, i, gotTop[i], wantTop[i])
			}
		}
	}
}

// pointTimes indexes points by identity, failing on duplicates (a shard
// boundary bug would evaluate a cell twice or not at all).
func pointTimes(t *testing.T, pts []Point) map[string]float64 {
	t.Helper()
	m := make(map[string]float64, len(pts))
	for _, p := range pts {
		id := p.String()
		if _, dup := m[id]; dup {
			t.Fatalf("duplicate point %q", id)
		}
		if p.Err != nil || p.Breakdown == nil {
			m[id] = -1
			continue
		}
		m[id] = float64(p.Breakdown.ExpectedTotalTime())
	}
	return m
}

func pointIDs(pts []Point) []string {
	ids := make([]string, len(pts))
	for i, p := range pts {
		ids[i] = p.String()
	}
	return ids
}

// TestShardRangeRejected: a cursor range outside the enumeration is an
// error, not a silent empty sweep.
func TestShardRangeRejected(t *testing.T) {
	sc := cs1Scenario()
	opt := Options{
		Batches:   []int{4096},
		Enumerate: parallel.EnumerateOptions{PowerOfTwo: true},
	}
	total, err := Cells(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{-1, 4}, {4, 2}, {0, total + 1}} {
		o := opt
		o.CursorLo, o.CursorHi = r[0], r[1]
		if _, err := Sweep(sc, o); err == nil {
			t.Errorf("range [%d,%d) accepted, want error", r[0], r[1])
		}
	}
}
