package explore

import (
	"testing"

	"amped/internal/faults"
	"amped/internal/model"
	"amped/internal/parallel"
)

// TestSortByTimeUsesExpectedTime pins the goodput-aware ranking: a point
// that is fastest on perfect hardware but carries a large failure overhead
// must lose to a slightly slower point on a reliable cluster.
func TestSortByTimeUsesExpectedTime(t *testing.T) {
	fragile := Point{
		Mapping: parallel.Mapping{TPIntra: 2}, Batch: 1, Fits: true,
		Breakdown: &model.Breakdown{
			ComputeForward: 10, NumBatches: 1,
			// 50% overhead: expected time 15.
			Reliability: faults.Expectation{FailureRate: 1e-4, CheckpointOverhead: 0.5},
		},
	}
	steady := Point{
		Mapping: parallel.Mapping{TPIntra: 4}, Batch: 1, Fits: true,
		Breakdown: &model.Breakdown{ComputeForward: 12, NumBatches: 1},
	}
	pts := []Point{fragile, steady}
	SortByTime(pts)
	if pts[0].Mapping != steady.Mapping {
		t.Errorf("expected the reliable 12 s point to beat the fragile 10 s (expected 15 s) one; got %v first", pts[0].Mapping)
	}
	if best := Best(pts); best == nil || best.Mapping != steady.Mapping {
		t.Errorf("Best picked %v, want the reliable point", best)
	}
}

// TestSweepCarriesReliability pins the end-to-end plumbing: a scenario whose
// training recipe carries a reliability spec yields points whose breakdowns
// expose the failure expectation, and the sweep still succeeds.
func TestSweepCarriesReliability(t *testing.T) {
	sc := cs1Scenario()
	sc.Training.Reliability = &faults.Spec{
		AccelMTBF: 5e6, CheckpointBW: 2e9, RestartTime: 300, OptimizerBytesPerParam: 12,
	}
	pts, err := Sweep(sc, Options{
		Batches:   []int{1024},
		Enumerate: parallel.EnumerateOptions{PowerOfTwo: true, MaxTP: 8, MaxPP: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		e := p.Breakdown.Reliability
		if !e.Enabled() {
			t.Fatalf("%v: reliability expectation missing", p)
		}
		if g := p.Breakdown.GoodputFraction(); g <= 0 || g >= 1 {
			t.Fatalf("%v: goodput %g outside (0,1)", p, g)
		}
		if p.Breakdown.ExpectedTotalTime() <= p.Breakdown.TotalTime() {
			t.Fatalf("%v: expected time not inflated", p)
		}
	}
}
