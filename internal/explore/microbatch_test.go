package explore

import (
	"testing"

	"amped/internal/model"
	"amped/internal/parallel"
)

func cs1Est(mp parallel.Mapping, batch int) model.Estimator {
	sc := cs1Scenario()
	return model.Estimator{
		Model:   sc.Model,
		System:  sc.System,
		Mapping: mp,
		Training: model.Training{
			Batch: parallel.Batch{Global: batch},
		},
	}
}

func TestOptimalMicrobatchesBeatsEveryFixedChoice(t *testing.T) {
	est := cs1Est(parallel.Mapping{TPIntra: 8, PPInter: 8, DPInter: 16}, 8192)
	nub, best, err := OptimalMicrobatches(est)
	if err != nil {
		t.Fatal(err)
	}
	per := 8192 / est.Mapping.DP()
	if per%nub != 0 || nub < est.Mapping.PP() {
		t.Fatalf("chosen N_ub=%d invalid for per-replica %d, PP %d", nub, per, est.Mapping.PP())
	}
	// Exhaustively verify optimality over the candidate set.
	for d := est.Mapping.PP(); d <= per; d++ {
		if per%d != 0 {
			continue
		}
		e := est
		e.Training.Batch.Microbatches = d
		bd, err := e.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if bd.PerBatch() < best.PerBatch() {
			t.Errorf("N_ub=%d (%v) beats chosen %d (%v)", d, bd.PerBatch(), nub, best.PerBatch())
		}
	}
}

func TestOptimalMicrobatchesNoPipeline(t *testing.T) {
	// Without PP, one microbatch (maximum ub) is optimal under the
	// monotone efficiency curve.
	est := cs1Est(parallel.Mapping{TPIntra: 8, DPInter: 128}, 8192)
	nub, bd, err := OptimalMicrobatches(est)
	if err != nil {
		t.Fatal(err)
	}
	if nub != 1 {
		t.Errorf("N_ub = %d, want 1 for a DP-only mapping", nub)
	}
	if bd.Bubble != 0 {
		t.Errorf("bubble = %v", bd.Bubble)
	}
}

func TestOptimalMicrobatchesDeepPipeline(t *testing.T) {
	// PP deeper than the per-replica batch: the single candidate is the
	// whole batch as microbatches of one sequence.
	est := cs1Est(parallel.Mapping{TPIntra: 8, PPInter: 64, DPInter: 2}, 128)
	nub, _, err := OptimalMicrobatches(est)
	if err != nil {
		t.Fatal(err)
	}
	if nub != 64 {
		t.Errorf("N_ub = %d, want 64 (per-replica batch)", nub)
	}
}

func TestOptimalMicrobatchesErrors(t *testing.T) {
	// Batch not divisible by DP.
	est := cs1Est(parallel.Mapping{TPIntra: 8, DPInter: 128}, 1000)
	if _, _, err := OptimalMicrobatches(est); err == nil {
		t.Error("non-divisible batch accepted")
	}
	// Every candidate fails (mapping does not tile the system).
	est = cs1Est(parallel.Mapping{TPIntra: 4, DPInter: 128}, 8192)
	if _, _, err := OptimalMicrobatches(est); err == nil {
		t.Error("non-tiling mapping accepted")
	}
	est = cs1Est(parallel.Mapping{TPIntra: 8, DPInter: 128}, 0)
	if _, _, err := OptimalMicrobatches(est); err == nil {
		t.Error("zero batch accepted")
	}
}
