package explore

import (
	"math/rand"
	"reflect"
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// dp3Scenario builds a 3-node single-accelerator system whose only natural
// data-parallel degree (3) does not divide power-of-two batches.
func dp3Scenario(t *testing.T) Scenario {
	t.Helper()
	accel, err := hardware.AcceleratorPreset("a100")
	if err != nil {
		t.Fatal(err)
	}
	m := transformer.Model{
		Name: "tiny", Layers: 4, Hidden: 256, Heads: 4,
		SeqLen: 128, Vocab: 1000, FFNRatio: 4,
	}
	sys := hardware.System{
		Name: "3x1", Accel: accel, Nodes: 3, AccelsPerNode: 1,
		Intra:       hardware.Link{Name: "i", Latency: 1e-6, Bandwidth: 2.4e12},
		Inter:       hardware.Link{Name: "e", Latency: 1e-5, Bandwidth: 2e11},
		NICsPerNode: 1,
	}
	return Scenario{Model: &m, System: &sys, Training: model.Training{}}
}

// TestSweepSkipsScheduleForNonDividingCells pins the b%dp fix: a batch that
// does not divide the DP degree must keep the scenario's own schedule (and
// error out in validation) rather than adopt an N_ub chosen for the
// silently truncated per-replica batch. Before the fix, batch 8 over DP=3
// truncated to per-replica 2 and recorded N_ub=2; the cell then failed
// validation anyway, leaving misleading microbatch metadata on the point.
func TestSweepSkipsScheduleForNonDividingCells(t *testing.T) {
	sc := dp3Scenario(t)
	pts, err := Sweep(sc, Options{
		Mappings:         []parallel.Mapping{{DPInter: 3}},
		Batches:          []int{8, 9},
		MicrobatchTarget: 1,
		KeepInvalid:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}

	bad := pts[0] // batch 8: 8 % 3 != 0
	if bad.Err == nil {
		t.Fatal("non-dividing cell did not error")
	}
	// The scenario sets no explicit schedule, so the defaulted count must
	// be the plain default (PP=1 -> 1), not ChooseMicrobatches(8/3, 1, 1)=2
	// from the truncated per-replica batch.
	if bad.Microbatches != 1 {
		t.Errorf("non-dividing cell N_ub = %d, want untouched default 1", bad.Microbatches)
	}

	good := pts[1] // batch 9: per-replica 3, target microbatch 1
	if good.Err != nil {
		t.Fatalf("dividing cell errored: %v", good.Err)
	}
	if want := ChooseMicrobatches(3, 1, 1); good.Microbatches != want {
		t.Errorf("dividing cell N_ub = %d, want %d", good.Microbatches, want)
	}
}

// TestChooseMicrobatchesTieBreak pins the tie rule: when two divisors sit
// equally close to the target count, the smaller one (fewer, larger
// microbatches) wins, matching the historical ascending scan.
func TestChooseMicrobatchesTieBreak(t *testing.T) {
	cases := []struct {
		per, pp, target, want int
	}{
		// want = 16/5 = 3; divisors 2 and 4 are both at distance 1.
		{16, 1, 5, 2},
		// Same tie with the pipeline floor excluding divisor 1.
		{16, 2, 5, 2},
		// want = 8/3 = 2 exactly: distance 0 beats the tie entirely.
		{8, 1, 3, 2},
		// want = 18/12 = 1 (floor); divisors 1,2,3,6,9,18 -> 1 at distance 0.
		{18, 1, 12, 1},
	}
	for _, c := range cases {
		if got := ChooseMicrobatches(c.per, c.pp, c.target); got != c.want {
			t.Errorf("ChooseMicrobatches(%d, %d, %d) = %d, want %d",
				c.per, c.pp, c.target, got, c.want)
		}
	}
}

// tiedPoints builds a sweep whose points all share identical time and
// energy (same breakdown, distinct mappings), in a deliberately shuffled
// order — the adversarial input for ordering determinism.
func tiedPoints(t *testing.T, seed int64) ([]Point, *hardware.System) {
	t.Helper()
	sc := dp3Scenario(t)
	pts, err := Sweep(sc, Options{
		Mappings: []parallel.Mapping{{DPInter: 3}},
		Batches:  []int{9},
	})
	if err != nil || len(pts) != 1 || pts[0].Err != nil {
		t.Fatalf("seed sweep: %v (%d points)", err, len(pts))
	}
	base := pts[0]
	out := make([]Point, 0, 4)
	for _, nub := range []int{9, 3, 1, 7} {
		p := base
		p.Microbatches = nub // distinct String() identity, identical Breakdown
		out = append(out, p)
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out, sc.System
}

// TestSortByTimeDeterministicOnTies shuffles points tied on time and checks
// SortByTime always lands the same order.
func TestSortByTimeDeterministicOnTies(t *testing.T) {
	ref, _ := tiedPoints(t, 1)
	SortByTime(ref)
	for seed := int64(2); seed < 8; seed++ {
		got, _ := tiedPoints(t, seed)
		SortByTime(got)
		for i := range got {
			if got[i].String() != ref[i].String() {
				t.Fatalf("seed %d: order diverged at %d: %s vs %s",
					seed, i, got[i].String(), ref[i].String())
			}
		}
	}
}

// TestParetoDeterministicOnTies checks the Pareto front keeps the same
// representative of a fully tied (time, energy) group regardless of input
// order — the sort.Slice it previously used left that to chance.
func TestParetoDeterministicOnTies(t *testing.T) {
	pts, sys := tiedPoints(t, 1)
	ref, err := ParetoTimeEnergy(pts, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 1 {
		t.Fatalf("tied group front has %d points, want 1", len(ref))
	}
	for seed := int64(2); seed < 8; seed++ {
		pts, _ := tiedPoints(t, seed)
		got, err := ParetoTimeEnergy(pts, sys)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("seed %d: front representative changed: %s vs %s",
				seed, got[0].String(), ref[0].String())
		}
	}
}
