package transformer

import "testing"

// TestOpSumsMatchesLayerOps asserts the allocation-free accessor agrees
// with the slice-returning LayerOps for dense, MoE and variant models.
func TestOpSumsMatchesLayerOps(t *testing.T) {
	models := []Model{Megatron145B(), GLaM(), MinGPT()}
	if v, err := (Variant{KVHeads: 8, Window: 1024}).Apply(Llama70B()); err == nil {
		models = append(models, v)
	} else {
		t.Fatal(err)
	}
	for _, m := range models {
		m := m
		for _, batch := range []int{1, 7, 512} {
			for l := 0; l < m.Layers; l += 1 + m.Layers/4 {
				var wantMACs, wantNonlin float64
				for _, op := range m.LayerOps(l, batch) {
					wantMACs += float64(op.MACs)
					wantNonlin += float64(op.Nonlin)
				}
				macs, nonlin := m.OpSums(l, batch)
				if float64(macs) != wantMACs || float64(nonlin) != wantNonlin {
					t.Fatalf("%s layer %d batch %d: OpSums = (%v, %v), want (%v, %v)",
						m.Name, l, batch, macs, nonlin, wantMACs, wantNonlin)
				}
			}
		}
	}
}

// TestOpSumAccessorsAllocFree is the allocation regression gate for the
// hot-path op accessors the compiled-scenario session builds on.
func TestOpSumAccessorsAllocFree(t *testing.T) {
	m := GLaM()
	if allocs := testing.AllocsPerRun(100, func() {
		m.OpSums(1, 4096)
		m.LayerMACs(2, 4096)
		m.LayerNonlin(3, 4096)
		m.ForwardMACs(64)
	}); allocs != 0 {
		t.Errorf("op-sum accessors allocate %v times per call set, want 0", allocs)
	}
}
