package transformer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// approx reports |got-want| <= tol*|want|.
func approx(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestBlockParameterCounts(t *testing.T) {
	// The classic 12·L·h² rule of thumb for block parameters (biases and
	// norms add <0.1% at these scales).
	cases := []struct {
		m      Model
		wantB  float64 // block params in billions
		wantPc float64 // tolerance
	}{
		{MinGPT(), 0.085, 0.01},
		{Megatron145B(), 145.0, 0.01},
		{Megatron310B(), 309.2, 0.01},
		{Megatron530B(), 528.4, 0.01},
		{Megatron1T(), 1006.6, 0.01},
	}
	for _, c := range cases {
		var block float64
		for l := 0; l < c.m.Layers; l++ {
			block += c.m.LayerParams(l)
		}
		if !approx(block/1e9, c.wantB, c.wantPc) {
			t.Errorf("%s block params = %.2fB, want ~%.1fB", c.m.Name, block/1e9, c.wantB)
		}
	}
}

func TestGPT3TotalParams(t *testing.T) {
	m := GPT3175B()
	if got := m.TotalParams() / 1e9; !approx(got, 175, 0.01) {
		t.Errorf("GPT-3 params = %.1fB, want ~175B", got)
	}
}

func TestValidatePresets(t *testing.T) {
	for _, name := range PresetNames() {
		m, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := Preset("bert"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Model)
	}{
		{"layers", func(m *Model) { m.Layers = 0 }},
		{"hidden", func(m *Model) { m.Hidden = -1 }},
		{"heads", func(m *Model) { m.Heads = 0 }},
		{"divisibility", func(m *Model) { m.Heads = 7 }},
		{"seq", func(m *Model) { m.SeqLen = 0 }},
		{"vocab", func(m *Model) { m.Vocab = 0 }},
		{"ffn", func(m *Model) { m.FFNRatio = 0 }},
		{"moe experts", func(m *Model) { m.MoEEvery = 2; m.Experts = 1 }},
		{"moe topk", func(m *Model) { m.MoEEvery = 2; m.Experts = 4; m.TopK = 8 }},
		{"negative moe", func(m *Model) { m.MoEEvery = -1 }},
	}
	for _, mm := range mutations {
		m := MinGPT()
		mm.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %q accepted", mm.name)
		}
	}
	var nilModel *Model
	if err := nilModel.Validate(); err == nil {
		t.Error("nil model accepted")
	}
}

func TestLayerOpsScaleLinearlyWithBatch(t *testing.T) {
	m := MinGPT()
	one := m.LayerMACs(0, 1)
	four := m.LayerMACs(0, 4)
	if !approx(float64(four), 4*float64(one), 1e-12) {
		t.Errorf("MACs not linear in batch: 1->%v, 4->%v", one, four)
	}
	if n1, n4 := m.LayerNonlin(0, 1), m.LayerNonlin(0, 4); !approx(float64(n4), 4*float64(n1), 1e-12) {
		t.Errorf("nonlin not linear in batch: %v, %v", n1, n4)
	}
}

func TestAttentionQuadraticInSeq(t *testing.T) {
	// The b·s²·h term: doubling s more than doubles attention MACs.
	m := MinGPT()
	base := m.LayerOps(0, 1)[0].MACs
	m.SeqLen *= 2
	doubled := m.LayerOps(0, 1)[0].MACs
	if float64(doubled) <= 2*float64(base) {
		t.Errorf("attention MACs not super-linear in seq: %v -> %v", base, doubled)
	}
	if float64(doubled) >= 4*float64(base) {
		t.Errorf("attention MACs worse than quadratic in seq: %v -> %v", base, doubled)
	}
}

func TestLayerOpsExactSmall(t *testing.T) {
	// Hand-computed counts for a tiny model: h=8, a=2, s=4, r=2, b=3.
	m := Model{Name: "tiny", Layers: 2, Hidden: 8, Heads: 2, SeqLen: 4, Vocab: 16, FFNRatio: 2}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := m.LayerOps(0, 3)
	tokens := 3.0 * 4
	wantAttn := 4*tokens*64 + 2*3*16*8 // 3072 + 768
	if got := float64(ops[0].MACs); got != wantAttn {
		t.Errorf("attention MACs = %v, want %v", got, wantAttn)
	}
	wantSoftmax := 3.0 * 3 * 2 * 16 // opsSoftmax·b·a·s²
	if got := float64(ops[0].Nonlin); got != wantSoftmax {
		t.Errorf("attention nonlin = %v, want %v", got, wantSoftmax)
	}
	wantMLP := 2 * tokens * 8 * 16 // 2·tokens·h·rh
	if got := float64(ops[1].MACs); got != wantMLP {
		t.Errorf("mlp MACs = %v, want %v", got, wantMLP)
	}
	wantGELU := 4 * tokens * 16
	if got := float64(ops[1].Nonlin); got != wantGELU {
		t.Errorf("mlp nonlin = %v, want %v", got, wantGELU)
	}
	wantNorms := (2*5 + 2*1) * tokens * 8
	if got := float64(ops[2].Nonlin); got != wantNorms {
		t.Errorf("norms nonlin = %v, want %v", got, wantNorms)
	}
	if ops[2].MACs != 0 {
		t.Errorf("norms MACs = %v, want 0", ops[2].MACs)
	}
}

func TestEmbeddingCounts(t *testing.T) {
	m := MinGPT()
	wantMACs := 2.0 * 256 * 768 * 50257
	if got := float64(m.EmbeddingMACs(2)); got != wantMACs {
		t.Errorf("EmbeddingMACs = %v, want %v", got, wantMACs)
	}
	wantParams := 50257.0*768 + 256.0*768
	if got := m.EmbeddingParams(); got != wantParams {
		t.Errorf("EmbeddingParams = %v, want %v", got, wantParams)
	}
}

func TestMoELayerSelection(t *testing.T) {
	g := GLaM()
	moe := 0
	for l := 0; l < g.Layers; l++ {
		if g.IsMoELayer(l) {
			moe++
			if (l+1)%2 != 0 {
				t.Errorf("layer %d flagged MoE but is odd-positioned", l)
			}
		}
	}
	if moe != 32 || g.MoELayers() != 32 {
		t.Errorf("GLaM MoE layers = %d (counted %d), want 32", g.MoELayers(), moe)
	}
	dense := MinGPT()
	if dense.MoE() || dense.MoELayers() != 0 || dense.IsMoELayer(0) {
		t.Error("dense model reports MoE layers")
	}
}

func TestMoEParamsExplodeComputeDoesNot(t *testing.T) {
	// The MoE promise (§II-B4): parameters grow by orders of magnitude
	// with only a small compute increase.
	g := GLaM()
	dense := g
	dense.Experts, dense.MoEEvery, dense.TopK = 0, 0, 0
	paramRatio := g.TotalParams() / dense.TotalParams()
	if paramRatio < 10 {
		t.Errorf("MoE param ratio = %.1f, want > 10x", paramRatio)
	}
	computeRatio := float64(g.ForwardMACs(8)) / float64(dense.ForwardMACs(8))
	if computeRatio > 2.5 {
		t.Errorf("MoE compute ratio = %.2f, want < 2.5x (top-2)", computeRatio)
	}
	if g.ActiveParams() >= g.TotalParams()/4 {
		t.Errorf("active params %.1fB not sparse vs total %.1fB",
			g.ActiveParams()/1e9, g.TotalParams()/1e9)
	}
}

func TestTrainingFLOPsConvention(t *testing.T) {
	// 6·N·T rule: training FLOPs ≈ 6 · params · tokens for h >> s models.
	m := Megatron1T()
	batch := 512
	got := float64(m.TrainingFLOPs(batch))
	rule := 6 * m.TotalParams() * m.TokensPerBatch(batch)
	// Attention's s²h term and the untied-logit MACs push above the rule,
	// but only by a bounded margin at h=25600 >> s=2048.
	if got < rule*0.95 || got > rule*1.25 {
		t.Errorf("TrainingFLOPs = %.3g, 6NT rule = %.3g (ratio %.2f)", got, rule, got/rule)
	}
}

func TestActivationsPerLayer(t *testing.T) {
	m := MinGPT()
	if got := m.ActivationsPerLayer(4); got != 4*256*768 {
		t.Errorf("ActivationsPerLayer = %v", got)
	}
	if got := m.TokensPerBatch(4); got != 1024 {
		t.Errorf("TokensPerBatch = %v", got)
	}
}

func TestOpsMonotoneProperties(t *testing.T) {
	f := func(rawH, rawB uint8) bool {
		h := (int(rawH)%32 + 1) * 64
		b := int(rawB)%64 + 1
		m := Model{Name: "p", Layers: 4, Hidden: h, Heads: 8, SeqLen: 128, Vocab: 1000, FFNRatio: 4}
		if h%8 != 0 {
			return true
		}
		// Wider model, same batch: strictly more MACs and params.
		wider := m
		wider.Hidden = h * 2
		if wider.LayerMACs(0, b) <= m.LayerMACs(0, b) {
			return false
		}
		if wider.LayerParams(0) <= m.LayerParams(0) {
			return false
		}
		// Forward MACs dominated by per-layer sum times layers.
		return m.ForwardMACs(b) > m.LayerMACs(0, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRenderings(t *testing.T) {
	g := GLaM()
	if s := g.String(); !strings.Contains(s, "active") {
		t.Errorf("MoE String() = %q, want active-params note", s)
	}
	d := MinGPT()
	if s := d.String(); !strings.Contains(s, "L=12") {
		t.Errorf("String() = %q", s)
	}
	for sub, want := range map[Sublayer]string{Attention: "attention", MLP: "mlp", Norms: "norms", Sublayer(9): "transformer.Sublayer(9)"} {
		if got := sub.String(); got != want {
			t.Errorf("Sublayer(%d).String() = %q, want %q", int(sub), got, want)
		}
	}
}

func TestChinchillaBudget(t *testing.T) {
	m := Megatron145B()
	tokens := m.ChinchillaTokens()
	if got := tokens / m.TotalParams(); got != 20 {
		t.Errorf("tokens per param = %v, want 20", got)
	}
	n := m.BatchesForTokens(tokens, 8192)
	// n x batch x seq covers the budget, and n-1 does not.
	per := m.TokensPerBatch(8192)
	if float64(n)*per < tokens {
		t.Errorf("%d batches cover only %v of %v tokens", n, float64(n)*per, tokens)
	}
	if float64(n-1)*per >= tokens {
		t.Errorf("%d batches already cover the budget", n-1)
	}
	if got := m.BatchesForTokens(0, 8192); got != 0 {
		t.Errorf("zero-token budget = %d batches", got)
	}
}

func TestParamBreakdown(t *testing.T) {
	// Dense model: the breakdown reconstructs TotalParams exactly and the
	// MLP holds the 2/3 share the 12·L·h² rule implies.
	m := Megatron145B()
	pb := m.Params()
	if !approx(pb.Total(), m.TotalParams(), 1e-12) {
		t.Errorf("breakdown total %v != %v", pb.Total(), m.TotalParams())
	}
	if pb.Experts != 0 {
		t.Errorf("dense model has expert params %v", pb.Experts)
	}
	if share := pb.MLP / (pb.MLP + pb.Attention); share < 0.6 || share > 0.72 {
		t.Errorf("MLP share = %v, want ~2/3", share)
	}
	// MoE model: experts dominate.
	g := GLaM()
	gb := g.Params()
	if !approx(gb.Total(), g.TotalParams(), 1e-12) {
		t.Errorf("GLaM breakdown total %v != %v", gb.Total(), g.TotalParams())
	}
	if gb.Experts < 0.9*gb.Total() {
		t.Errorf("GLaM experts hold %v of %v, want > 90%%", gb.Experts, gb.Total())
	}
	// A tiny model's embeddings dominate.
	small := MinGPT()
	sb := small.Params()
	if sb.Embedding < sb.Attention {
		t.Errorf("minGPT embedding %v below attention %v", sb.Embedding, sb.Attention)
	}
}
