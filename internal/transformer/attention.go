package transformer

import "fmt"

// Attention-variant knobs. The base Model assumes full multi-head
// attention; these optional fields cover the two variants that changed
// transformer serving/training economics after the paper: grouped-query
// attention (fewer key/value heads) and sliding-window (local) attention.
// Both plug into the same Eq. 2 op-counting path.

// Variant extends a Model with attention-architecture options.
type Variant struct {
	// KVHeads is the number of key/value heads for grouped-query
	// attention; 1 is multi-query attention, 0 or Heads is standard MHA.
	KVHeads int
	// Window is the sliding-attention window in tokens; 0 means full
	// (causal) attention over the whole sequence.
	Window int
	// CrossAttention adds an encoder-decoder cross-attention sublayer to
	// every block (the paper's §II-A encoder-decoder architecture).
	CrossAttention bool
	// EncoderSeqLen is the encoder-side sequence length cross-attention
	// attends over; 0 means the model's own SeqLen.
	EncoderSeqLen int
}

// Apply returns a copy of m with the variant's counting rules attached.
// It validates compatibility (KV heads must divide the head count; the
// window cannot exceed the sequence length).
func (v Variant) Apply(m Model) (Model, error) {
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	if v.KVHeads < 0 || v.Window < 0 {
		return Model{}, fmt.Errorf("transformer: negative variant fields %+v", v)
	}
	if v.KVHeads > 0 {
		if v.KVHeads > m.Heads {
			return Model{}, fmt.Errorf("transformer: %d KV heads exceed %d heads", v.KVHeads, m.Heads)
		}
		if m.Heads%v.KVHeads != 0 {
			return Model{}, fmt.Errorf("transformer: %d heads not divisible by %d KV heads", m.Heads, v.KVHeads)
		}
	}
	if v.Window > m.SeqLen {
		return Model{}, fmt.Errorf("transformer: window %d exceeds sequence length %d", v.Window, m.SeqLen)
	}
	if v.EncoderSeqLen < 0 {
		return Model{}, fmt.Errorf("transformer: negative encoder sequence length %d", v.EncoderSeqLen)
	}
	if v.EncoderSeqLen > 0 && !v.CrossAttention {
		return Model{}, fmt.Errorf("transformer: encoder sequence length set without cross-attention")
	}
	m.variant = v
	if v.KVHeads > 0 && v.KVHeads != m.Heads {
		m.Name = fmt.Sprintf("%s+GQA%d", m.Name, v.KVHeads)
	}
	if v.Window > 0 {
		m.Name = fmt.Sprintf("%s+SW%d", m.Name, v.Window)
	}
	if v.CrossAttention {
		m.Name = m.Name + "+XAttn"
	}
	return m, nil
}

// encoderSeq returns the encoder-side sequence length for cross-attention.
func (m *Model) encoderSeq() float64 {
	if m.variant.EncoderSeqLen > 0 {
		return float64(m.variant.EncoderSeqLen)
	}
	return float64(m.SeqLen)
}

// kvHeads returns the effective key/value head count.
func (m *Model) kvHeads() int {
	if m.variant.KVHeads > 0 {
		return m.variant.KVHeads
	}
	return m.Heads
}

// KVHeads returns the effective key/value head count: the GQA head count
// when the variant sets one, otherwise the full head count (standard MHA).
func (m *Model) KVHeads() int { return m.kvHeads() }

// KVFrac is the key/value width fraction KVHeads/Heads — the factor by which
// GQA shrinks every K/V-sized tensor (projections, CP exchange payloads,
// KV-cache entries). 1 for standard multi-head attention.
func (m *Model) KVFrac() float64 {
	return float64(m.kvHeads()) / float64(m.Heads)
}

// attnSpan returns the per-token attention span: the window if sliding
// attention is enabled, otherwise the full sequence.
func (m *Model) attnSpan() float64 {
	if m.variant.Window > 0 {
		return float64(m.variant.Window)
	}
	return float64(m.SeqLen)
}

// AttnSpan returns the per-token attention span in tokens: the sliding
// window when the variant sets one, otherwise the full sequence length.
// Memory estimators must use this span for score-matrix sizing so they
// agree with the op counts.
func (m *Model) AttnSpan() float64 { return m.attnSpan() }

// DecodeSpan returns the attention span of one decode step against a
// KV cache holding ctx tokens: min(window, ctx) under sliding attention,
// otherwise the whole cached context.
func (m *Model) DecodeSpan(ctx int) float64 {
	if m.variant.Window > 0 && m.variant.Window < ctx {
		return float64(m.variant.Window)
	}
	return float64(ctx)
}

// attentionMACs counts the attention sublayer's forward MACs under the
// active variant: Q projection b·s·h², KV projections scaled by the
// KV-head fraction, score/context matmuls over the attention span, and the
// output projection b·s·h².
func (m *Model) attentionMACs(batch int) float64 {
	b := float64(batch)
	s := float64(m.SeqLen)
	h := float64(m.Hidden)
	kvFrac := float64(m.kvHeads()) / float64(m.Heads)
	span := m.attnSpan()
	proj := b * s * h * h * (2 + 2*kvFrac) // Q + out, K + V scaled
	scores := 2 * b * s * span * h         // QK^T and attn·V
	total := proj + scores
	if m.variant.CrossAttention {
		// Cross-attention: Q/out projections over decoder tokens, K/V
		// projections over encoder tokens, score/context matmuls across
		// the encoder sequence (never windowed).
		se := m.encoderSeq()
		total += b*s*h*h*2 + b*se*h*h*2*kvFrac + 2*b*s*se*h
	}
	return total
}

// attentionNonlin counts softmax ops under the active variant.
func (m *Model) attentionNonlin(batch int) float64 {
	b := float64(batch)
	s := float64(m.SeqLen)
	a := float64(m.Heads)
	total := opsSoftmax * b * a * s * m.attnSpan()
	if m.variant.CrossAttention {
		total += opsSoftmax * b * a * s * m.encoderSeq()
	}
	return total
}

// attentionActElems counts the activation elements the attention sublayer
// streams per forward pass under the active variant (see the LayerOps
// streamed-byte conventions): two passes each over x, Q, the context and
// the output ((8)·b·s·h), two passes each over K and V (4·kvFrac·b·s·h),
// and four passes over the b·a·s·span score matrices (write, the softmax
// read+write, the context-matmul read).
func (m *Model) attentionActElems(batch int) float64 {
	b := float64(batch)
	s := float64(m.SeqLen)
	h := float64(m.Hidden)
	a := float64(m.Heads)
	kvFrac := float64(m.kvHeads()) / float64(m.Heads)
	total := (8+4*kvFrac)*b*s*h + 4*b*a*s*m.attnSpan()
	if m.variant.CrossAttention {
		se := m.encoderSeq()
		total += 4*b*s*h + 4*kvFrac*b*se*h + 4*b*a*s*se
	}
	return total
}

// attentionWeightElems counts the weight elements streamed once per forward
// pass: the same (2+2·kvFrac)·h² matrices the projections multiply by.
func (m *Model) attentionWeightElems() float64 {
	h := float64(m.Hidden)
	kvFrac := float64(m.kvHeads()) / float64(m.Heads)
	w := h * h * (2 + 2*kvFrac)
	if m.variant.CrossAttention {
		w += h * h * (2 + 2*kvFrac)
	}
	return w
}

// attentionParams counts the attention projections under the active
// variant: Q and output are h×h, K and V shrink with the KV-head fraction.
func (m *Model) attentionParams() float64 {
	h := float64(m.Hidden)
	kvFrac := float64(m.kvHeads()) / float64(m.Heads)
	p := h*h*(2+2*kvFrac) + 4*h
	if m.variant.CrossAttention {
		// A second attention parameter set plus its LayerNorm.
		p += h*h*(2+2*kvFrac) + 4*h + 2*h
	}
	return p
}
