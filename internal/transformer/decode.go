package transformer

import "amped/internal/units"

// Decode-phase op counting. One autoregressive decode step processes a
// single new token per sequence against a KV cache of previously computed
// keys/values, so every tokens term of the training conventions collapses
// to b (the concurrent sequence count) and the score/context matmuls run
// over the cached context instead of the full sequence. The KV-cache reads
// are the decode step's defining memory traffic and are counted separately
// (Ops.KVElems) so the roofline path can price them without conflating them
// with freshly produced activations.

// decodeAttentionOps counts the self-attention (plus optional
// cross-attention) ops of one decode step for `batch` concurrent sequences
// whose caches hold ctx tokens each.
//
// Conventions (b sequences, h hidden, a heads, k = KV fraction,
// w = DecodeSpan(ctx)):
//
//	MACs    = (2+2k)·b·h² + 2·b·w·h      (projections, score + context)
//	nonlin  = opsSoftmax·b·a·w
//	act     = (8+4k)·b·h + 4·b·a·w       (same two-passes-per-tensor rule)
//	KV      = 2·b·w·k·h                  (cached K and V read once each)
//	weights = (2+2k)·h²
//
// Cross-attention decodes against the fixed encoder sequence: its K/V are
// computed once at prefill and reused, so a decode step only adds the Q/out
// projections, the encoder-wide score/context matmuls and the encoder-side
// cache reads.
func (m *Model) decodeAttentionOps(batch, ctx int) Ops {
	b := float64(batch)
	h := float64(m.Hidden)
	a := float64(m.Heads)
	k := m.KVFrac()
	w := m.DecodeSpan(ctx)
	ops := Ops{
		Sublayer:    Attention,
		MACs:        units.Ops((2+2*k)*b*h*h + 2*b*w*h),
		Nonlin:      units.Ops(opsSoftmax * b * a * w),
		ActElems:    units.Ops((8+4*k)*b*h + 4*b*a*w),
		KVElems:     units.Ops(2 * b * w * k * h),
		WeightElems: units.Ops(h * h * (2 + 2*k)),
	}
	if m.variant.CrossAttention {
		se := m.encoderSeq()
		ops.MACs += units.Ops(2*b*h*h + 2*b*se*h)
		ops.Nonlin += units.Ops(opsSoftmax * b * a * se)
		ops.ActElems += units.Ops(4*b*h + 4*b*a*se)
		ops.KVElems += units.Ops(2 * b * se * k * h)
		ops.WeightElems += units.Ops(h * h * (2 + 2*k))
	}
	return ops
}

// decodeLayerOps is the fixed-size-array core of DecodeLayerOps.
func (m *Model) decodeLayerOps(l, batch, ctx int) [3]Ops {
	b := float64(batch)
	h := float64(m.Hidden)

	attn := m.decodeAttentionOps(batch, ctx)

	// MLP and norms see exactly the training sublayers at tokens = b.
	mlp := Ops{Sublayer: MLP}
	denseAct := 2*b*h + 4*b*m.ffn()
	denseW := 2 * h * m.ffn()
	if m.IsMoELayer(l) {
		k := float64(m.topK())
		mlp.MACs = units.Ops(k*2*b*h*m.ffn() + b*h*float64(m.Experts))
		mlp.Nonlin = units.Ops(k * opsGELU * b * m.ffn())
		mlp.ActElems = units.Ops(k*denseAct + 2*b*float64(m.Experts))
		mlp.WeightElems = units.Ops(k*denseW + h*float64(m.Experts))
	} else {
		mlp.MACs = units.Ops(2 * b * h * m.ffn())
		mlp.Nonlin = units.Ops(opsGELU * b * m.ffn())
		mlp.ActElems = units.Ops(denseAct)
		mlp.WeightElems = units.Ops(denseW)
	}

	norms := Ops{
		Sublayer:    Norms,
		Nonlin:      units.Ops((2*opsLayerNorm + 2*opsResidual) * b * h),
		ActElems:    units.Ops(10 * b * h),
		WeightElems: units.Ops(4 * h),
	}

	return [3]Ops{attn, mlp, norms}
}

// DecodeLayerOps returns the operation counts of block l for one decode
// step of `batch` concurrent sequences, each attending over a KV cache of
// ctx tokens. The conventions mirror LayerOps with tokens = b and the
// score/context matmuls spanning DecodeSpan(ctx); the KV-cache reads land
// in Ops.KVElems.
func (m *Model) DecodeLayerOps(l, batch, ctx int) []Ops {
	ops := m.decodeLayerOps(l, batch, ctx)
	return ops[:]
}

// DecodeOpSums sums one decode step's block-l op counts across sublayers
// without allocating — the hot-path accessor for compiled inference
// sessions, mirroring OpSums.
func (m *Model) DecodeOpSums(l, batch, ctx int) (macs, nonlin units.Ops) {
	ops := m.decodeLayerOps(l, batch, ctx)
	for i := range ops {
		macs += ops[i].MACs
		nonlin += ops[i].Nonlin
	}
	return macs, nonlin
}

// DecodeEmbeddingMACs counts the logit projection of one decode step:
// b·h·V for the single new token of each sequence.
func (m *Model) DecodeEmbeddingMACs(batch int) units.Ops {
	return units.Ops(float64(batch) * float64(m.Hidden) * float64(m.Vocab))
}

// DecodeEmbeddingStreamElems returns the activation and weight elements the
// decode-step logit projection streams, under the EmbeddingStreamElems
// conventions at one token per sequence.
func (m *Model) DecodeEmbeddingStreamElems(batch int) (act, weight units.Ops) {
	b := float64(batch)
	act = units.Ops(b*float64(m.Hidden) + b*float64(m.Vocab))
	weight = units.Ops(float64(m.Hidden) * float64(m.Vocab))
	return act, weight
}
