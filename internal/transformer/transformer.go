// Package transformer describes transformer language models at the
// granularity AMPeD needs: per-layer, per-sublayer counts of MAC operations,
// non-linear operations, parameters, activations and gradients — the
// N_MAC(l,i), N_nonlin(l,i), N_act(l), N_g(l) inputs of Eq. 2–12.
//
// The counting conventions (documented per function) follow the standard
// decoder-block accounting also used by Megatron-LM: a layer is an attention
// sublayer plus an MLP sublayer, each wrapped in LayerNorm and a residual
// connection; Mixture-of-Experts replaces the MLP of selected layers with a
// gated bank of expert MLPs.
package transformer

import (
	"errors"
	"fmt"

	"amped/internal/units"
)

// Model is a transformer architecture description. All fields are the
// paper's "transformer model parameters" knobs.
type Model struct {
	// Name identifies the model in reports.
	Name string
	// Layers is L, the number of transformer blocks.
	Layers int
	// Hidden is h, the embedding/hidden dimensionality.
	Hidden int
	// Heads is a, the attention head count (must divide Hidden).
	Heads int
	// SeqLen is s, the training sequence length.
	SeqLen int
	// Vocab is V, the vocabulary size for the embedding and logit layers.
	Vocab int
	// FFNRatio is the MLP expansion ratio r (intermediate = r·h);
	// virtually every GPT-family model uses 4.
	FFNRatio float64
	// Experts is E, the expert count of MoE layers. Zero means dense.
	Experts int
	// MoEEvery selects which blocks are MoE: every MoEEvery-th block
	// (1-indexed positions MoEEvery, 2·MoEEvery, …). GLaM uses 2. Zero
	// disables MoE regardless of Experts.
	MoEEvery int
	// TopK is the number of experts activated per token (GShard-style
	// top-2 gating). Defaults to 2 when MoE is enabled and TopK is 0.
	TopK int

	// variant carries optional attention-architecture rules (GQA, sliding
	// window); attach one with Variant.Apply.
	variant Variant
}

// Nonlinear-operation cost constants: elementary operations per element for
// each activation-function evaluation. These are the implementation's fixed
// accounting conventions (the paper leaves them to the N_nonlin input).
const (
	// opsSoftmax covers exp, running max subtraction and the normalizing
	// divide per attention score.
	opsSoftmax = 3
	// opsGELU covers the tanh-approximation polynomial per element.
	opsGELU = 4
	// opsLayerNorm covers mean/variance accumulation and the normalize
	// multiply-add per element.
	opsLayerNorm = 5
	// opsResidual is the elementwise add.
	opsResidual = 1
)

// Validate checks architectural consistency.
func (m *Model) Validate() error {
	switch {
	case m == nil:
		return errors.New("transformer: nil model")
	case m.Layers <= 0:
		return fmt.Errorf("transformer: model %q: layer count %d must be positive", m.Name, m.Layers)
	case m.Hidden <= 0:
		return fmt.Errorf("transformer: model %q: hidden size %d must be positive", m.Name, m.Hidden)
	case m.Heads <= 0:
		return fmt.Errorf("transformer: model %q: head count %d must be positive", m.Name, m.Heads)
	case m.Hidden%m.Heads != 0:
		return fmt.Errorf("transformer: model %q: hidden size %d not divisible by %d heads", m.Name, m.Hidden, m.Heads)
	case m.SeqLen <= 0:
		return fmt.Errorf("transformer: model %q: sequence length %d must be positive", m.Name, m.SeqLen)
	case m.Vocab <= 0:
		return fmt.Errorf("transformer: model %q: vocabulary size %d must be positive", m.Name, m.Vocab)
	case m.FFNRatio <= 0:
		return fmt.Errorf("transformer: model %q: FFN ratio %g must be positive", m.Name, m.FFNRatio)
	case m.MoEEvery < 0 || m.Experts < 0 || m.TopK < 0:
		return fmt.Errorf("transformer: model %q: negative MoE parameters", m.Name)
	case m.MoEEvery > 0 && m.Experts < 2:
		return fmt.Errorf("transformer: model %q: MoE every %d layers needs >= 2 experts, have %d", m.Name, m.MoEEvery, m.Experts)
	case m.MoEEvery > 0 && m.topK() > m.Experts:
		return fmt.Errorf("transformer: model %q: top-%d gating exceeds %d experts", m.Name, m.topK(), m.Experts)
	}
	return nil
}

// topK returns the effective activated-expert count.
func (m *Model) topK() int {
	if m.TopK <= 0 {
		return 2
	}
	return m.TopK
}

// MoE reports whether the model contains any MoE layers.
func (m *Model) MoE() bool { return m.MoEEvery > 0 && m.Experts > 1 }

// IsMoELayer reports whether block l (0-indexed) is a Mixture-of-Experts
// block: every MoEEvery-th block, counting from position MoEEvery-1.
func (m *Model) IsMoELayer(l int) bool {
	return m.MoE() && (l+1)%m.MoEEvery == 0
}

// MoELayers counts the MoE blocks in the model.
func (m *Model) MoELayers() int {
	if !m.MoE() {
		return 0
	}
	return m.Layers / m.MoEEvery
}

// ffn returns the MLP intermediate width r·h.
func (m *Model) ffn() float64 { return m.FFNRatio * float64(m.Hidden) }

// Sublayer identifies one component of a transformer block for the
// per-sublayer sum of Eq. 2.
type Sublayer int

const (
	// Attention is the self-attention sublayer (QKV/output projections and
	// the two score/context batched matmuls).
	Attention Sublayer = iota
	// MLP is the position-wise feed-forward sublayer, or the activated
	// experts plus gate of an MoE block.
	MLP
	// Norms covers the two LayerNorms and two residual additions.
	Norms
)

// String names the sublayer.
func (s Sublayer) String() string {
	switch s {
	case Attention:
		return "attention"
	case MLP:
		return "mlp"
	case Norms:
		return "norms"
	default:
		return fmt.Sprintf("transformer.Sublayer(%d)", int(s))
	}
}

// Ops is one sublayer's forward-pass operation counts for a given batch.
type Ops struct {
	// Sublayer identifies which component these counts belong to.
	Sublayer Sublayer
	// MACs is N_MAC(l,i), multiply-accumulate operations.
	MACs units.Ops
	// Nonlin is N_nonlin(l,i), non-linear elementwise operations.
	Nonlin units.Ops
	// ActElems counts the activation elements the sublayer streams through
	// device memory in the forward pass (reads + writes), the bytes-side
	// numerator of the per-sublayer roofline t_op = max(work/peak, bytes/bw).
	// Element counts, not bytes: the operand precision is applied by the
	// model layer. See layerOps for the counting conventions.
	ActElems units.Ops
	// WeightElems counts the weight elements the sublayer streams once per
	// forward pass (each matrix read once).
	WeightElems units.Ops
	// KVElems counts the KV-cache elements a decode step reads from device
	// memory (2·w·kvFrac·h per sequence for self-attention). Zero for
	// training/prefill ops, where K and V are freshly produced activations
	// already counted in ActElems. Priced on the bytes side of the roofline
	// like ActElems, at the activation operand width.
	KVElems units.Ops
}

// LayerOps returns the forward-pass operation counts of block l for a batch
// of `batch` sequences of the model's sequence length.
//
// Counting conventions (b sequences, s tokens, h hidden, a heads, r ratio;
// w = attention span, k = KV-head fraction — both 1 for the base variant):
//
//	attention MACs   = (2+2k)·b·s·h² + 2·b·s·w·h   (projections, scores + context)
//	attention nonlin = opsSoftmax·b·a·s·w
//	dense MLP MACs   = 2·r·b·s·h²
//	MoE MLP MACs     = TopK·2·r·b·s·h² + b·s·h·E   (experts + gate)
//	MLP nonlin       = opsGELU·b·s·r·h (per activated expert for MoE)
//	norms nonlin     = 2·opsLayerNorm·b·s·h + 2·opsResidual·b·s·h
//
// Streamed-byte conventions (ActElems/WeightElems): every distinct
// activation tensor costs one write plus one read (2 passes), and every
// elementwise pass over an existing tensor (softmax over the scores, GELU
// over the MLP interior, each residual's second operand) costs its extra
// read+write. Weights are streamed once per forward pass. This yields:
//
//	attention act = (8+4k)·b·s·h + 4·b·a·s·w,  weights = (2+2k)·h²
//	dense MLP act = 2·b·s·h + 4·r·b·s·h,       weights = 2·r·h²
//	MoE MLP act   = TopK·dense + 2·b·s·E,      weights = TopK·2·r·h² + h·E
//	norms act     = 10·b·s·h,                  weights = 4h
//
// (MoE weights count the activated experts only — the streaming view of
// the same TopK convention the MAC count uses.) Like opsSoftmax/opsGELU,
// these are fixed accounting conventions, not microarchitectural truth;
// they exist so bandwidth-bound sublayers stop pricing as free.
func (m *Model) LayerOps(l, batch int) []Ops {
	ops := m.layerOps(l, batch)
	return ops[:]
}

// layerOps is LayerOps into a fixed-size array, so callers that only need
// the counts (not a slice) stay off the heap.
func (m *Model) layerOps(l, batch int) [3]Ops {
	b := float64(batch)
	s := float64(m.SeqLen)
	h := float64(m.Hidden)
	tokens := b * s

	attn := Ops{
		Sublayer:    Attention,
		MACs:        units.Ops(m.attentionMACs(batch)),
		Nonlin:      units.Ops(m.attentionNonlin(batch)),
		ActElems:    units.Ops(m.attentionActElems(batch)),
		WeightElems: units.Ops(m.attentionWeightElems()),
	}

	mlp := Ops{Sublayer: MLP}
	denseAct := 2*tokens*h + 4*tokens*m.ffn()
	denseW := 2 * h * m.ffn()
	if m.IsMoELayer(l) {
		k := float64(m.topK())
		mlp.MACs = units.Ops(k*2*tokens*h*m.ffn() + tokens*h*float64(m.Experts))
		mlp.Nonlin = units.Ops(k * opsGELU * tokens * m.ffn())
		mlp.ActElems = units.Ops(k*denseAct + 2*tokens*float64(m.Experts))
		mlp.WeightElems = units.Ops(k*denseW + h*float64(m.Experts))
	} else {
		mlp.MACs = units.Ops(2 * tokens * h * m.ffn())
		mlp.Nonlin = units.Ops(opsGELU * tokens * m.ffn())
		mlp.ActElems = units.Ops(denseAct)
		mlp.WeightElems = units.Ops(denseW)
	}

	norms := Ops{
		Sublayer:    Norms,
		Nonlin:      units.Ops((2*opsLayerNorm + 2*opsResidual) * tokens * h),
		ActElems:    units.Ops(10 * tokens * h),
		WeightElems: units.Ops(4 * h),
	}

	return [3]Ops{attn, mlp, norms}
}

// OpSums returns block l's forward operation counts summed across its
// sublayers (attention, then MLP, then norms — the LayerOps order) without
// allocating. This is the hot-path accessor the compiled-scenario session
// uses to build its per-batch aggregates.
func (m *Model) OpSums(l, batch int) (macs, nonlin units.Ops) {
	ops := m.layerOps(l, batch)
	for i := range ops {
		macs += ops[i].MACs
		nonlin += ops[i].Nonlin
	}
	return macs, nonlin
}

// LayerMACs sums the MAC counts of LayerOps.
func (m *Model) LayerMACs(l, batch int) units.Ops {
	macs, _ := m.OpSums(l, batch)
	return macs
}

// LayerNonlin sums the non-linear-op counts of LayerOps.
func (m *Model) LayerNonlin(l, batch int) units.Ops {
	_, nonlin := m.OpSums(l, batch)
	return nonlin
}

// EmbeddingMACs counts the forward MACs of the output logit projection
// (b·s·h·V). The input embedding is a lookup and contributes no MACs.
func (m *Model) EmbeddingMACs(batch int) units.Ops {
	return units.Ops(float64(batch) * float64(m.SeqLen) * float64(m.Hidden) * float64(m.Vocab))
}

// EmbeddingStreamElems returns the activation and weight element counts the
// logit projection streams per forward pass, under the same conventions as
// LayerOps: the hidden stream is read once (b·s·h), the logits written once
// (b·s·V), and the tied V×h matrix streamed once.
func (m *Model) EmbeddingStreamElems(batch int) (act, weight units.Ops) {
	tokens := float64(batch) * float64(m.SeqLen)
	act = units.Ops(tokens*float64(m.Hidden) + tokens*float64(m.Vocab))
	weight = units.Ops(float64(m.Hidden) * float64(m.Vocab))
	return act, weight
}

// ForwardMACs counts all forward-pass MACs for one batch: every block plus
// the logit projection.
func (m *Model) ForwardMACs(batch int) units.Ops {
	var total units.Ops
	for l := 0; l < m.Layers; l++ {
		total += m.LayerMACs(l, batch)
	}
	return total + m.EmbeddingMACs(batch)
}

// LayerParams counts the trainable parameters of block l. This is the
// N_MAC(l) of the weight-update Eq. 12 and the N_g(l) of the gradient
// all-reduce Eq. 11 (gradients are produced one per parameter).
//
//	attention: 4h² + 4h        (QKV/out weights + biases)
//	dense MLP: 2rh² + (r+1)h   (two matrices + biases)
//	MoE MLP:   E·(2rh² + (r+1)h) + hE   (experts + gate)
//	norms:     4h              (two LayerNorms, scale+shift)
func (m *Model) LayerParams(l int) float64 {
	h := float64(m.Hidden)
	attn := m.attentionParams()
	norms := 4 * h
	mlpDense := 2*h*m.ffn() + m.ffn() + h
	if m.IsMoELayer(l) {
		return attn + norms + float64(m.Experts)*mlpDense + h*float64(m.Experts)
	}
	return attn + norms + mlpDense
}

// AttentionNormParams counts the attention and LayerNorm parameters of one
// block (4h² + 4h weights/biases plus 4h norm parameters) — the part of an
// MoE block that every data-parallel replica holds in full even when the
// experts themselves are sharded across the expert-parallel group.
func (m *Model) AttentionNormParams() float64 {
	return m.attentionParams() + 4*float64(m.Hidden)
}

// EmbeddingParams counts the token-embedding and position-embedding
// parameters (V·h + s·h); the logit projection is weight-tied.
func (m *Model) EmbeddingParams() float64 {
	return float64(m.Vocab)*float64(m.Hidden) + float64(m.SeqLen)*float64(m.Hidden)
}

// TotalParams counts all trainable parameters.
func (m *Model) TotalParams() float64 {
	var total float64
	for l := 0; l < m.Layers; l++ {
		total += m.LayerParams(l)
	}
	return total + m.EmbeddingParams()
}

// ActiveParams counts the parameters touched per token: for MoE models only
// the TopK activated experts count, which is the quantity that governs
// compute (GLaM's headline efficiency claim).
func (m *Model) ActiveParams() float64 {
	if !m.MoE() {
		return m.TotalParams()
	}
	var total float64
	for l := 0; l < m.Layers; l++ {
		if m.IsMoELayer(l) {
			h := float64(m.Hidden)
			dense := 2*h*m.ffn() + m.ffn() + h
			total += 4*h*h + 4*h + 4*h + float64(m.topK())*dense + h*float64(m.Experts)
		} else {
			total += m.LayerParams(l)
		}
	}
	return total + m.EmbeddingParams()
}

// ActivationsPerLayer is the activation element count b·s·h flowing between
// blocks, the N_act,PP(l) of Eq. 7 (and N_act,MoE of Eq. 9).
func (m *Model) ActivationsPerLayer(batch int) float64 {
	return float64(batch) * float64(m.SeqLen) * float64(m.Hidden)
}

// TokensPerBatch is b·s, the token throughput unit.
func (m *Model) TokensPerBatch(batch int) float64 {
	return float64(batch) * float64(m.SeqLen)
}

// TrainingFLOPs estimates the total useful floating-point work of one
// training step on one batch, using the standard 1x-forward + 2x-backward
// convention: 6 FLOPs per MAC of forward work. This is the numerator of the
// paper's TFLOP/s/GPU metric (Table II, Fig. 2c).
func (m *Model) TrainingFLOPs(batch int) units.FLOPs {
	return units.FLOPs(float64(m.ForwardMACs(batch)) * 3 * units.FLOPsPerMAC)
}

// AtSeqLen returns a copy of the model with its sequence length replaced —
// the prefill view of an inference workload, where the "training" sequence
// length is the prompt length. The attention variant survives the copy; a
// sliding window longer than the new sequence is clamped to it so the copy
// stays valid under Variant.Apply's rules.
func (m *Model) AtSeqLen(s int) Model {
	out := *m
	out.SeqLen = s
	if out.variant.Window > s {
		out.variant.Window = s
	}
	return out
}

// String summarizes the architecture.
func (m *Model) String() string {
	if m.MoE() {
		return fmt.Sprintf("%s (L=%d h=%d a=%d s=%d E=%d/%d, %.1fB params, %.1fB active)",
			m.Name, m.Layers, m.Hidden, m.Heads, m.SeqLen, m.Experts, m.MoEEvery,
			m.TotalParams()/1e9, m.ActiveParams()/1e9)
	}
	return fmt.Sprintf("%s (L=%d h=%d a=%d s=%d, %.1fB params)",
		m.Name, m.Layers, m.Hidden, m.Heads, m.SeqLen, m.TotalParams()/1e9)
}

// ChinchillaTokens returns the compute-optimal training-token budget of
// the Hoffmann et al. scaling law: about 20 tokens per parameter. It is
// the standard way to size NumBatches for a training-time prediction when
// no explicit token budget is given.
func (m *Model) ChinchillaTokens() float64 {
	return 20 * m.TotalParams()
}

// BatchesForTokens converts a token budget into the N_batch of Eq. 1 for a
// given global batch size (rounding up so the budget is met).
func (m *Model) BatchesForTokens(tokens float64, batch int) int {
	per := m.TokensPerBatch(batch)
	if per <= 0 {
		return 0
	}
	n := int(tokens / per)
	if float64(n)*per < tokens {
		n++
	}
	return n
}

// ParamBreakdown splits the model's trainable parameters by component —
// the view that explains where an architecture's capacity lives (and why
// MoE totals explode while attention stays fixed).
type ParamBreakdown struct {
	// Attention covers all attention projections and their norms.
	Attention float64
	// MLP covers dense feed-forward parameters.
	MLP float64
	// Experts covers MoE expert banks and gates.
	Experts float64
	// Embedding covers token and position embeddings.
	Embedding float64
}

// Total sums the breakdown.
func (p ParamBreakdown) Total() float64 {
	return p.Attention + p.MLP + p.Experts + p.Embedding
}

// Params returns the per-component parameter breakdown.
func (m *Model) Params() ParamBreakdown {
	var out ParamBreakdown
	for l := 0; l < m.Layers; l++ {
		attnNorm := m.AttentionNormParams()
		out.Attention += attnNorm
		rest := m.LayerParams(l) - attnNorm
		if m.IsMoELayer(l) {
			out.Experts += rest
		} else {
			out.MLP += rest
		}
	}
	out.Embedding = m.EmbeddingParams()
	return out
}
