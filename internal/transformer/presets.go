package transformer

import (
	"fmt"
	"sort"
)

// MinGPT is the 85M-parameter minGPT of the paper's DP validation (§V-A):
// 12 layers, 12 heads, hidden 768. The paper quotes 85M counting the block
// parameters (12·12·768² ≈ 85M); embeddings add ~39M on top.
func MinGPT() Model {
	return Model{
		Name: "minGPT-85M", Layers: 12, Hidden: 768, Heads: 12,
		SeqLen: 256, Vocab: 50257, FFNRatio: 4,
	}
}

// MinGPTPipeline is the PP-validation variant (§V-B): 16 layers, 8 heads,
// hidden 1024, trained on Wikipedia with torchgpipe.
func MinGPTPipeline() Model {
	return Model{
		Name: "minGPT-PP", Layers: 16, Hidden: 1024, Heads: 8,
		SeqLen: 512, Vocab: 50257, FFNRatio: 4,
	}
}

// GPT3175B is the 175-billion-parameter GPT-3 of Fig. 2c.
func GPT3175B() Model {
	return Model{
		Name: "GPT-3 175B", Layers: 96, Hidden: 12288, Heads: 96,
		SeqLen: 2048, Vocab: 51200, FFNRatio: 4,
	}
}

// Megatron145B is the 145.6B configuration of Table II / Case Study I:
// 80 layers, hidden 12288 (12·L·h² ≈ 145G block parameters).
func Megatron145B() Model {
	return Model{
		Name: "Megatron 145B", Layers: 80, Hidden: 12288, Heads: 96,
		SeqLen: 2048, Vocab: 51200, FFNRatio: 4,
	}
}

// Megatron310B is the 310.1B configuration of Table II.
func Megatron310B() Model {
	return Model{
		Name: "Megatron 310B", Layers: 96, Hidden: 16384, Heads: 128,
		SeqLen: 2048, Vocab: 51200, FFNRatio: 4,
	}
}

// Megatron530B is the 529.6B configuration of Table II.
func Megatron530B() Model {
	return Model{
		Name: "Megatron 530B", Layers: 105, Hidden: 20480, Heads: 128,
		SeqLen: 2048, Vocab: 51200, FFNRatio: 4,
	}
}

// Megatron1T is the 1.008T configuration of Table II.
func Megatron1T() Model {
	return Model{
		Name: "Megatron 1T", Layers: 128, Hidden: 25600, Heads: 160,
		SeqLen: 2048, Vocab: 51200, FFNRatio: 4,
	}
}

// GLaM is the Mixture-of-Experts model of Case Study III: 64 blocks at
// hidden 8192 with 64 experts in every second block, GShard-style top-2
// gating (the GLaM 64B/64E architecture).
func GLaM() Model {
	return Model{
		Name: "GLaM 64B/64E", Layers: 64, Hidden: 8192, Heads: 128,
		SeqLen: 1024, Vocab: 256000, FFNRatio: 4,
		Experts: 64, MoEEvery: 2, TopK: 2,
	}
}

// GPipe24 is the 24-layer transformer of the GPipe P100 validation
// (Table III).
func GPipe24() Model {
	return Model{
		Name: "GPipe transformer-24", Layers: 24, Hidden: 1024, Heads: 16,
		SeqLen: 512, Vocab: 32000, FFNRatio: 4,
	}
}

// modelPresets indexes the model presets for config-file lookup.
var modelPresets = map[string]func() Model{
	"mingpt":        MinGPT,
	"mingpt-pp":     MinGPTPipeline,
	"gpt3-175b":     GPT3175B,
	"megatron-145b": Megatron145B,
	"megatron-310b": Megatron310B,
	"megatron-530b": Megatron530B,
	"megatron-1t":   Megatron1T,
	"glam":          GLaM,
	"gpipe-24":      GPipe24,
	"llama-7b":      Llama7B,
	"llama-70b":     Llama70B,
	"gpt2-small":    GPT2Small,
	"gpt2-xl":       GPT2XL,
	"t5-large":      T5Large,
}

// Preset returns a named model preset.
func Preset(name string) (Model, error) {
	f, ok := modelPresets[name]
	if !ok {
		return Model{}, fmt.Errorf("transformer: unknown model preset %q (have %v)", name, PresetNames())
	}
	return f(), nil
}

// PresetNames lists available preset keys in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(modelPresets))
	for n := range modelPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Llama7B is a LLaMA-2-7B-class decoder: 32 blocks at hidden 4096 with
// standard multi-head attention (the SwiGLU MLP is approximated by an
// equivalent-parameter FFN ratio of 4).
func Llama7B() Model {
	return Model{
		Name: "LLaMA-2 7B", Layers: 32, Hidden: 4096, Heads: 32,
		SeqLen: 4096, Vocab: 32000, FFNRatio: 4,
	}
}

// Llama70B is a LLaMA-2-70B-class decoder with grouped-query attention
// (8 KV heads for 64 query heads) — a preset exercising the GQA variant.
func Llama70B() Model {
	base := Model{
		Name: "LLaMA-2 70B", Layers: 80, Hidden: 8192, Heads: 64,
		SeqLen: 4096, Vocab: 32000, FFNRatio: 4,
	}
	m, err := (Variant{KVHeads: 8}).Apply(base)
	if err != nil {
		// The preset's fields are static and valid; a failure here is a
		// programming error, not an input condition.
		panic(err)
	}
	m.Name = "LLaMA-2 70B" // the GQA marker is implicit in a named preset
	return m
}

// GPT2Small is the 124M-parameter GPT-2: 12 blocks at hidden 768.
func GPT2Small() Model {
	return Model{
		Name: "GPT-2 small", Layers: 12, Hidden: 768, Heads: 12,
		SeqLen: 1024, Vocab: 50257, FFNRatio: 4,
	}
}

// GPT2XL is the 1.5B-parameter GPT-2 XL: 48 blocks at hidden 1600.
func GPT2XL() Model {
	return Model{
		Name: "GPT-2 XL", Layers: 48, Hidden: 1600, Heads: 25,
		SeqLen: 1024, Vocab: 50257, FFNRatio: 4,
	}
}

// T5Large is a T5-Large-class encoder-decoder: the decoder stack carries
// cross-attention over a 512-token encoder sequence (the paper's §II-A
// encoder-decoder architecture, exercised through the variant system).
// The preset models the decoder stack; the encoder runs the same blocks
// without cross-attention and is approximated by doubling Layers in
// whole-model studies.
func T5Large() Model {
	base := Model{
		Name: "T5-Large decoder", Layers: 24, Hidden: 1024, Heads: 16,
		SeqLen: 512, Vocab: 32128, FFNRatio: 4,
	}
	m, err := (Variant{CrossAttention: true, EncoderSeqLen: 512}).Apply(base)
	if err != nil {
		panic(err) // static preset fields; failure is a programming error
	}
	m.Name = "T5-Large decoder"
	return m
}
