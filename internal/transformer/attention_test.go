package transformer

import (
	"strings"
	"testing"
)

func TestVariantDefaultsMatchBase(t *testing.T) {
	// Applying the empty variant changes nothing.
	base := GPT3175B()
	same, err := Variant{}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if same.LayerMACs(0, 4) != base.LayerMACs(0, 4) {
		t.Errorf("empty variant changed MACs")
	}
	if same.LayerParams(0) != base.LayerParams(0) {
		t.Errorf("empty variant changed params")
	}
	if same.Name != base.Name {
		t.Errorf("empty variant renamed model to %q", same.Name)
	}
}

func TestGQAShrinksKVProjections(t *testing.T) {
	base := GPT3175B() // 96 heads
	gqa, err := Variant{KVHeads: 8}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	// Attention params: base 4h², GQA (2 + 2/12)h².
	baseAttn := base.LayerOps(0, 1)[0]
	gqaAttn := gqa.LayerOps(0, 1)[0]
	if gqaAttn.MACs >= baseAttn.MACs {
		t.Errorf("GQA MACs %v not below MHA %v", gqaAttn.MACs, baseAttn.MACs)
	}
	ratio := gqa.LayerParams(0) / base.LayerParams(0)
	if ratio >= 1 || ratio < 0.8 {
		t.Errorf("GQA layer param ratio = %v", ratio)
	}
	if !strings.Contains(gqa.Name, "GQA8") {
		t.Errorf("name = %q", gqa.Name)
	}
	// Score/context matmuls are unchanged (all query heads still attend).
	wantScores := 2.0 * 2048 * 2048 * 12288
	gotDelta := float64(baseAttn.MACs) - float64(gqaAttn.MACs)
	projDelta := 2.0 * (1 - 8.0/96) * 2048 * 12288 * 12288
	if diff := gotDelta - projDelta; diff > 1e-3*projDelta || diff < -1e-3*projDelta {
		t.Errorf("GQA MAC delta = %v, want projection-only %v (scores %v unchanged)",
			gotDelta, projDelta, wantScores)
	}
}

func TestMQAExtreme(t *testing.T) {
	base := MinGPT() // 12 heads
	mqa, err := Variant{KVHeads: 1}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if mqa.LayerParams(0) >= base.LayerParams(0) {
		t.Error("MQA did not shrink params")
	}
	if mqa.AttentionNormParams() >= base.AttentionNormParams() {
		t.Error("MQA did not shrink AttentionNormParams")
	}
}

func TestSlidingWindowCutsQuadraticTerm(t *testing.T) {
	base := GPT3175B() // s=2048
	sw, err := Variant{Window: 256}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	baseAttn := base.LayerOps(0, 1)[0]
	swAttn := sw.LayerOps(0, 1)[0]
	if swAttn.MACs >= baseAttn.MACs {
		t.Error("sliding window did not cut attention MACs")
	}
	// Softmax ops shrink by exactly the window fraction.
	if got, want := float64(swAttn.Nonlin)/float64(baseAttn.Nonlin), 256.0/2048; got < want*0.99 || got > want*1.01 {
		t.Errorf("softmax ratio = %v, want %v", got, want)
	}
	// Parameters are untouched — the window changes compute, not weights.
	if sw.LayerParams(0) != base.LayerParams(0) {
		t.Error("sliding window changed params")
	}
	if !strings.Contains(sw.Name, "SW256") {
		t.Errorf("name = %q", sw.Name)
	}
}

func TestVariantComposition(t *testing.T) {
	base := GPT3175B()
	both, err := Variant{KVHeads: 8, Window: 512}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	gqaOnly, _ := Variant{KVHeads: 8}.Apply(base)
	swOnly, _ := Variant{Window: 512}.Apply(base)
	if both.LayerMACs(0, 1) >= gqaOnly.LayerMACs(0, 1) {
		t.Error("composition not below GQA-only")
	}
	if both.LayerMACs(0, 1) >= swOnly.LayerMACs(0, 1) {
		t.Error("composition not below window-only")
	}
	if err := both.Validate(); err != nil {
		t.Errorf("composed model invalid: %v", err)
	}
}

func TestVariantRejections(t *testing.T) {
	base := MinGPT() // 12 heads, s=256
	cases := []Variant{
		{KVHeads: -1},
		{Window: -1},
		{KVHeads: 24}, // more KV than heads
		{KVHeads: 5},  // not a divisor of 12
		{Window: 512}, // exceeds seq len
	}
	for _, v := range cases {
		if _, err := v.Apply(base); err == nil {
			t.Errorf("variant %+v accepted", v)
		}
	}
	broken := base
	broken.Hidden = 0
	if _, err := (Variant{}).Apply(broken); err == nil {
		t.Error("variant applied to broken model")
	}
}

func TestVariantTotalParamsConsistency(t *testing.T) {
	// GQA on every layer shrinks total params by the per-layer delta x L.
	base := GPT3175B()
	gqa, err := Variant{KVHeads: 12}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	perLayer := base.LayerParams(0) - gqa.LayerParams(0)
	total := base.TotalParams() - gqa.TotalParams()
	want := perLayer * float64(base.Layers)
	if diff := total - want; diff > 1 || diff < -1 {
		t.Errorf("total delta %v != per-layer delta x L %v", total, want)
	}
}

func TestLlamaPresets(t *testing.T) {
	small := Llama7B()
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := small.TotalParams() / 1e9; got < 6 || got > 8 {
		t.Errorf("LLaMA-7B params = %.1fB", got)
	}
	big := Llama70B()
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	// GQA: 80·(2+2/8)·8192² attention + 80·2·4·8192² MLP ≈ 55.9B block
	// params; with FFN-ratio-4 approximating SwiGLU, the total lands in
	// the 55-70B band.
	if got := big.TotalParams() / 1e9; got < 55 || got > 72 {
		t.Errorf("LLaMA-70B params = %.1fB", got)
	}
	// The preset has fewer attention params than an MHA twin would.
	mha := Model{Name: "mha", Layers: 80, Hidden: 8192, Heads: 64,
		SeqLen: 4096, Vocab: 32000, FFNRatio: 4}
	if big.LayerParams(0) >= mha.LayerParams(0) {
		t.Error("LLaMA-70B preset lost its GQA")
	}
	for _, name := range []string{"llama-7b", "llama-70b"} {
		if _, err := Preset(name); err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
	}
}

func TestCrossAttention(t *testing.T) {
	base := MinGPT()
	xattn, err := Variant{CrossAttention: true}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xattn.Name, "XAttn") {
		t.Errorf("name = %q", xattn.Name)
	}
	// Exactly one extra attention parameter set plus a LayerNorm per block.
	h := float64(base.Hidden)
	wantDelta := 4*h*h + 4*h + 2*h
	if got := xattn.LayerParams(0) - base.LayerParams(0); got != wantDelta {
		t.Errorf("param delta = %v, want %v", got, wantDelta)
	}
	// With equal encoder/decoder lengths the attention MACs roughly double.
	baseAttn := float64(base.LayerOps(0, 2)[0].MACs)
	xAttn := float64(xattn.LayerOps(0, 2)[0].MACs)
	if ratio := xAttn / baseAttn; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("cross-attention MAC ratio = %v, want ~2", ratio)
	}
	// Softmax work doubles too.
	if got := float64(xattn.LayerOps(0, 2)[0].Nonlin) / float64(base.LayerOps(0, 2)[0].Nonlin); got != 2 {
		t.Errorf("softmax ratio = %v, want 2", got)
	}
}

func TestCrossAttentionEncoderLength(t *testing.T) {
	base := MinGPT() // s=256
	short, err := Variant{CrossAttention: true, EncoderSeqLen: 64}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Variant{CrossAttention: true}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if short.LayerMACs(0, 2) >= full.LayerMACs(0, 2) {
		t.Error("shorter encoder did not reduce cross-attention MACs")
	}
	// Rejections.
	if _, err := (Variant{EncoderSeqLen: 64}).Apply(base); err == nil {
		t.Error("encoder length without cross-attention accepted")
	}
	if _, err := (Variant{CrossAttention: true, EncoderSeqLen: -1}).Apply(base); err == nil {
		t.Error("negative encoder length accepted")
	}
}

func TestCrossAttentionComposesWithGQA(t *testing.T) {
	base := GPT3175B()
	both, err := Variant{CrossAttention: true, KVHeads: 8}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	xOnly, _ := Variant{CrossAttention: true}.Apply(base)
	if both.LayerParams(0) >= xOnly.LayerParams(0) {
		t.Error("GQA did not shrink the cross-attention KV projections")
	}
	if err := both.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewPresets(t *testing.T) {
	small := GPT2Small()
	if got := small.TotalParams() / 1e6; got < 115 || got > 135 {
		t.Errorf("GPT-2 small params = %.0fM, want ~124M", got)
	}
	xl := GPT2XL()
	if got := xl.TotalParams() / 1e9; got < 1.4 || got > 1.7 {
		t.Errorf("GPT-2 XL params = %.2fB, want ~1.5B", got)
	}
	t5 := T5Large()
	if err := t5.Validate(); err != nil {
		t.Fatal(err)
	}
	// The decoder preset carries cross-attention parameters: more than a
	// decoder-only twin of the same dims.
	plain := Model{Name: "p", Layers: 24, Hidden: 1024, Heads: 16,
		SeqLen: 512, Vocab: 32128, FFNRatio: 4}
	if t5.LayerParams(0) <= plain.LayerParams(0) {
		t.Error("T5 preset lost its cross-attention")
	}
	for _, name := range []string{"gpt2-small", "gpt2-xl", "t5-large"} {
		if _, err := Preset(name); err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
	}
}
