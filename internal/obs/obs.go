// Package obs is the evaluation pipeline's observability layer: a
// stdlib-only span/trace API sized for the serving hot path, a ring buffer
// of recent request traces (the /debug/trace endpoint), and a fixed-bucket
// Prometheus-text histogram with exact cumulative-bucket semantics.
//
// Design constraints, in order:
//
//   - Zero allocations on the hot path. A Trace owns a fixed-capacity span
//     array; StartSpan/End are two time reads and a few stores. The only
//     allocations are one Trace per request (cold, at admission) and the
//     Snapshot taken after the response is written (cold, bounded by the
//     ring size).
//   - One goroutine per trace. A Trace is owned by its request goroutine;
//     it is NOT safe for concurrent span recording. Cross-goroutine work
//     (a sweep's worker pool) reports through its own counters
//     (explore.Progress), not through spans.
//   - Context propagation, not parameter threading. The request ID and
//     trace ride the request context through every layer that already
//     takes a context (the limiter, explore.SweepContext), so deep layers
//     need no API change to be attributable.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of a request's lifecycle. The set is closed on
// purpose: a fixed enum keeps per-phase metric lookup an array index and
// the span records a single byte.
type Phase uint8

const (
	// PhaseQueue is time spent waiting for a limiter slot before execution.
	PhaseQueue Phase = iota
	// PhaseDecode covers body read, JSON parse and scenario resolution.
	PhaseDecode
	// PhaseCache is the compiled-session cache lookup (including, for
	// requests that join an in-flight compile, the wait for its result).
	PhaseCache
	// PhaseCompile is a model.Compile run. Exactly one concurrent request
	// per scenario records this phase; the others wait in PhaseCache.
	PhaseCompile
	// PhaseEvaluate is a single-point Session.Evaluate.
	PhaseEvaluate
	// PhaseSweep is a design-space sweep (explore.SweepContext).
	PhaseSweep
	// PhaseEncode is response serialization and write.
	PhaseEncode

	// NumPhases bounds the enum for array-indexed per-phase metrics.
	NumPhases = int(PhaseEncode) + 1
)

var phaseNames = [NumPhases]string{
	"queue", "decode", "cache", "compile", "evaluate", "sweep", "encode",
}

// String returns the phase's stable wire name (used as the Prometheus
// label value and the /debug/trace field).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Span is one recorded phase: its offset from the trace start and its
// duration. A zero Dur with a nonzero Start marks a span that never ended
// (the request panicked or is still running). Count is the number of
// operations coalesced into the span (see StartSpan); it is at least 1.
type Span struct {
	Phase Phase
	Start time.Duration
	Dur   time.Duration
	Count int
}

// spanSampleEvery is the clock-read sampling period for coalesced spans: a
// reopened span refreshes its duration on every Nth End instead of every
// one, so a tight loop of same-phase spans (a sweep evaluating thousands
// of points) pays one clock read per N operations rather than two per
// operation. The reported duration can lag the true end of the span by at
// most N-1 operations — nanoseconds of error on millisecond spans.
const spanSampleEvery = 16

// MaxSpans bounds the spans one trace can hold. Requests record well under
// ten phases; overflow spans are dropped (counted in Dropped) rather than
// allocated.
const MaxSpans = 16

// Trace records one request's phase timeline. Create with NewTrace; owned
// by a single goroutine.
type Trace struct {
	id      string
	start   time.Time
	n       int
	closed  int // index of the span End closed most recently, -1 if none
	dropped int
	spans   [MaxSpans]Span
}

// traceEpoch is a per-process random prefix so request IDs from different
// processes (or restarts) never collide in aggregated logs.
var traceEpoch = func() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint32(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint32(b[:])
}()

var traceSeq atomic.Uint64

// NewTrace starts a trace with a fresh process-unique request ID.
func NewTrace() *Trace {
	return &Trace{
		id:     fmt.Sprintf("%08x-%06x", traceEpoch, traceSeq.Add(1)),
		start:  time.Now(),
		closed: -1,
	}
}

// ID returns the request ID ("ppppppppp-nnnnnn": process prefix, sequence).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time { return t.start }

// ActiveSpan is a started, not-yet-ended span. The zero value (returned
// for nil or full traces) is a no-op, so call sites never branch.
type ActiveSpan struct {
	t         *Trace
	idx       int32
	coalesced bool
}

// StartSpan opens a span for the phase. Zero-alloc; safe on a nil trace.
//
// Starting the same phase again immediately after ending it does not open
// a new span: it reopens the previous one and bumps its Count, with the
// clock sampled every spanSampleEvery-th End. A loop wrapping each of its
// iterations in a span therefore records one coalesced span covering the
// loop and pays ~1/spanSampleEvery clock reads per iteration — cheap
// enough to leave enabled on the evaluation hot path.
func (t *Trace) StartSpan(p Phase) ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	if idx := t.n - 1; idx >= 0 && t.closed == idx && t.spans[idx].Phase == p {
		t.spans[idx].Count++
		t.closed = -1
		return ActiveSpan{t: t, idx: int32(idx), coalesced: true}
	}
	if t.n >= MaxSpans {
		t.dropped++
		return ActiveSpan{}
	}
	idx := t.n
	t.n++
	t.closed = -1
	t.spans[idx] = Span{Phase: p, Start: time.Since(t.start), Count: 1}
	return ActiveSpan{t: t, idx: int32(idx)}
}

// End closes the span, recording its duration. No-op on the zero value.
// Ends of a coalesced span only sample the clock periodically; the span's
// duration may lag the final operation by up to spanSampleEvery-1
// iterations of the coalesced loop.
func (s ActiveSpan) End() {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.idx]
	s.t.closed = int(s.idx)
	if s.coalesced && sp.Count%spanSampleEvery != 0 {
		return
	}
	sp.Dur = time.Since(s.t.start) - sp.Start
}

// Spans returns the recorded spans in start order. The returned slice
// aliases the trace's storage; callers must not retain it past the trace's
// request.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans[:t.n]
}

// Dropped reports spans discarded because the trace was full.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return t.dropped
}

// PhaseDur sums the recorded durations of one phase (a request can record
// a phase more than once, e.g. decode before and after admission).
func (t *Trace) PhaseDur(p Phase) time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for i := 0; i < t.n; i++ {
		if t.spans[i].Phase == p {
			d += t.spans[i].Dur
		}
	}
	return d
}

// ctxKey is the context key type for trace propagation.
type ctxKey struct{}

// NewContext returns ctx carrying the trace; the request ID and phase
// timeline then flow through every context-taking layer (the limiter,
// explore.SweepContext) without API changes.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace methods
// and StartSpan tolerate nil, so callers use the result unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string { return FromContext(ctx).ID() }
