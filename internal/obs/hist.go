package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket cumulative histogram with Prometheus
// semantics: counts[i] is the number of observations <= bounds[i], the
// +Inf bucket equals the total count. Observe is lock-free and safe for
// concurrent use; Write renders the text exposition sample lines.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (read-only).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the cumulative per-bound counts (excluding +Inf).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Write renders the histogram's sample lines (bucket/sum/count) in
// Prometheus text format. labels, when non-empty, is a pre-rendered label
// pair list ('phase="decode"') merged ahead of the le label; the caller
// emits the # HELP / # TYPE header once per metric family.
func (h *Histogram) Write(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatBound(b), h.counts[i].Load())
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count.Load())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	}
}

// formatBound renders a bucket bound the way Prometheus clients do: %g,
// which keeps 0.001 as 0.001 and 250000 as 250000.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
