package obs

import (
	"sync"
	"time"
)

// SpanSnapshot is one span of a completed trace, in wire form for
// /debug/trace: phase name plus start offset and duration in seconds.
// Count (present when >1) reports how many operations were coalesced into
// the span.
type SpanSnapshot struct {
	Phase  string  `json:"phase"`
	StartS float64 `json:"start_s"`
	DurS   float64 `json:"dur_s"`
	Count  int     `json:"count,omitempty"`
}

// Snapshot is a completed request trace as captured into the ring buffer:
// identity, outcome, total latency and the per-phase timeline.
type Snapshot struct {
	ID      string         `json:"request_id"`
	Handler string         `json:"handler"`
	Status  int            `json:"status"`
	Start   time.Time      `json:"start"`
	TotalS  float64        `json:"total_s"`
	Spans   []SpanSnapshot `json:"spans"`
	Dropped int            `json:"spans_dropped,omitempty"`
}

// Snapshot captures the trace's current state for the ring buffer. It
// allocates (cold path: once per request, after the response is written).
func (t *Trace) Snapshot(handler string, status int) Snapshot {
	if t == nil {
		return Snapshot{}
	}
	spans := make([]SpanSnapshot, t.n)
	for i := 0; i < t.n; i++ {
		sp := t.spans[i]
		spans[i] = SpanSnapshot{
			Phase:  sp.Phase.String(),
			StartS: sp.Start.Seconds(),
			DurS:   sp.Dur.Seconds(),
		}
		if sp.Count > 1 {
			spans[i].Count = sp.Count
		}
	}
	return Snapshot{
		ID:      t.id,
		Handler: handler,
		Status:  status,
		Start:   t.start,
		TotalS:  time.Since(t.start).Seconds(),
		Spans:   spans,
		Dropped: t.dropped,
	}
}

// Ring is a fixed-capacity buffer of the most recent completed traces,
// the storage behind /debug/trace?last=N. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Snapshot
	next  int
	total uint64
}

// NewRing creates a ring holding the last capacity traces (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Snapshot, 0, capacity)}
}

// Add records a completed trace, evicting the oldest when full.
func (r *Ring) Add(s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Last returns up to n snapshots, most recent first. n <= 0 returns all
// buffered snapshots.
func (r *Ring) Last(n int) []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	have := len(r.buf)
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Snapshot, 0, n)
	// The newest entry sits just before next (once the ring has wrapped)
	// or at len-1 (while still filling).
	newest := len(r.buf) - 1
	if len(r.buf) == cap(r.buf) {
		newest = (r.next - 1 + cap(r.buf)) % cap(r.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(newest-i+have)%have])
	}
	return out
}

// Total reports how many traces have ever been added.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
