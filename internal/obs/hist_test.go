package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramExactBucketMath pins the cumulative-bucket semantics on a
// hand-computed case: every bucket counts observations <= its bound, the
// +Inf bucket equals the total count, and the sum is exact.
func TestHistogramExactBucketMath(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1, 1)
	for _, v := range []float64{
		0.0005, // <= all bounds
		0.001,  // boundary: counts in the 0.001 bucket (le semantics)
		0.0011, // just above: first lands in 0.01
		0.05,   // lands in 0.1
		0.5,    // lands in 1
		3,      // only +Inf
	} {
		h.Observe(v)
	}
	want := []uint64{2, 3, 4, 5}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket le=%g count = %d, want %d", h.Bounds()[i], got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	wantSum := 0.0005 + 0.001 + 0.0011 + 0.05 + 0.5 + 3
	if math.Abs(h.Sum()-wantSum) > 1e-15 {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestHistogramGoldenRendering is the golden test for the Prometheus text
// rendering: exact output, byte for byte, labeled and unlabeled.
func TestHistogramGoldenRendering(t *testing.T) {
	h := NewHistogram(0.001, 0.025, 0.5)
	h.Observe(0.0004)
	h.Observe(0.02)
	h.Observe(0.02)
	h.Observe(10)

	var b strings.Builder
	h.Write(&b, "amped_phase_duration_seconds", `phase="decode"`)
	want := `amped_phase_duration_seconds_bucket{phase="decode",le="0.001"} 1
amped_phase_duration_seconds_bucket{phase="decode",le="0.025"} 3
amped_phase_duration_seconds_bucket{phase="decode",le="0.5"} 3
amped_phase_duration_seconds_bucket{phase="decode",le="+Inf"} 4
amped_phase_duration_seconds_sum{phase="decode"} 10.0404
amped_phase_duration_seconds_count{phase="decode"} 4
`
	if b.String() != want {
		t.Errorf("labeled rendering:\n got: %q\nwant: %q", b.String(), want)
	}

	b.Reset()
	h.Write(&b, "amped_queue_wait_seconds", "")
	want = `amped_queue_wait_seconds_bucket{le="0.001"} 1
amped_queue_wait_seconds_bucket{le="0.025"} 3
amped_queue_wait_seconds_bucket{le="0.5"} 3
amped_queue_wait_seconds_bucket{le="+Inf"} 4
amped_queue_wait_seconds_sum 10.0404
amped_queue_wait_seconds_count 4
`
	if b.String() != want {
		t.Errorf("unlabeled rendering:\n got: %q\nwant: %q", b.String(), want)
	}
}

// TestHistogramConcurrentObserve exercises the lock-free path under the
// race detector and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(0.5, 1.5)
	var wg sync.WaitGroup
	const goroutines, per = 16, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	const total = goroutines * per
	if h.Count() != total {
		t.Errorf("count = %d, want %d", h.Count(), total)
	}
	if got := h.BucketCounts(); got[0] != 0 || got[1] != total {
		t.Errorf("buckets = %v, want [0 %d]", got, total)
	}
	if h.Sum() != total {
		t.Errorf("sum = %g, want %d", h.Sum(), total)
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(1)
	if got := h.BucketCounts(); got[0] != 1 {
		t.Fatalf("le=1 bucket = %d after Observe(1), want 1 (le is inclusive)", got[0])
	}
}
