package obs

import (
	"context"
	"regexp"
	"testing"
	"time"
)

func TestTraceRecordsSpansInOrder(t *testing.T) {
	tr := NewTrace()
	s1 := tr.StartSpan(PhaseDecode)
	s1.End()
	s2 := tr.StartSpan(PhaseEvaluate)
	time.Sleep(time.Millisecond)
	s2.End()
	s3 := tr.StartSpan(PhaseEncode)
	s3.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wantPhases := []Phase{PhaseDecode, PhaseEvaluate, PhaseEncode}
	for i, sp := range spans {
		if sp.Phase != wantPhases[i] {
			t.Errorf("span %d phase = %v, want %v", i, sp.Phase, wantPhases[i])
		}
		if sp.Dur < 0 {
			t.Errorf("span %d negative duration %v", i, sp.Dur)
		}
	}
	if spans[1].Dur < time.Millisecond {
		t.Errorf("evaluate span %v, want >= 1ms", spans[1].Dur)
	}
	if spans[0].Start > spans[1].Start || spans[1].Start > spans[2].Start {
		t.Errorf("span starts not monotone: %+v", spans)
	}
	if got := tr.PhaseDur(PhaseEvaluate); got != spans[1].Dur {
		t.Errorf("PhaseDur(evaluate) = %v, want %v", got, spans[1].Dur)
	}
}

func TestTraceNilAndOverflowSafe(t *testing.T) {
	var nilTrace *Trace
	sp := nilTrace.StartSpan(PhaseDecode)
	sp.End() // must not panic
	if nilTrace.ID() != "" || len(nilTrace.Spans()) != 0 || nilTrace.PhaseDur(PhaseDecode) != 0 {
		t.Error("nil trace accessors not zero")
	}

	// Alternate phases so coalescing cannot fold the spans together.
	tr := NewTrace()
	for i := 0; i < MaxSpans; i++ {
		s := tr.StartSpan(Phase(i % 2))
		s.End()
	}
	// The last recorded span is Phase(1); overflow with a different phase so
	// coalescing cannot absorb the attempts — they must be counted dropped.
	for i := 0; i < 5; i++ {
		s := tr.StartSpan(PhaseQueue)
		s.End()
	}
	if len(tr.Spans()) != MaxSpans {
		t.Errorf("overflowed trace holds %d spans, want %d", len(tr.Spans()), MaxSpans)
	}
	if tr.Dropped() != 5 {
		t.Errorf("dropped = %d, want 5", tr.Dropped())
	}
}

// TestSpanCoalescing pins the hot-path contract: immediately restarting
// the phase that just ended extends the existing span instead of opening a
// new one, so a loop of evaluations records one span whose Count is the
// iteration total and whose duration covers the loop.
func TestSpanCoalescing(t *testing.T) {
	tr := NewTrace()
	const iters = 3*spanSampleEvery + 7
	for i := 0; i < iters; i++ {
		sp := tr.StartSpan(PhaseEvaluate)
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("coalesced loop recorded %d spans, want 1", len(spans))
	}
	if spans[0].Count != iters {
		t.Errorf("coalesced span count = %d, want %d", spans[0].Count, iters)
	}
	if spans[0].Dur <= 0 {
		t.Errorf("coalesced span duration = %v, want > 0 (sampled every %d ends)",
			spans[0].Dur, spanSampleEvery)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped())
	}

	// A different phase breaks the run; returning to the first phase later
	// starts a fresh span rather than resurrecting the old one.
	tr.StartSpan(PhaseEncode).End()
	tr.StartSpan(PhaseEvaluate).End()
	spans = tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans after phase change, want 3", len(spans))
	}
	if spans[1].Phase != PhaseEncode || spans[2].Phase != PhaseEvaluate {
		t.Errorf("span phases = %v, %v; want encode then evaluate", spans[1].Phase, spans[2].Phase)
	}
	if spans[2].Count != 1 {
		t.Errorf("fresh evaluate span count = %d, want 1", spans[2].Count)
	}
}

// TestSpanNestingDoesNotCoalesce: an inner span (compile inside cache)
// must never be folded into its enclosing span, and the enclosing span's
// End still records a duration spanning the inner work.
func TestSpanNestingDoesNotCoalesce(t *testing.T) {
	tr := NewTrace()
	outer := tr.StartSpan(PhaseCache)
	inner := tr.StartSpan(PhaseCompile)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	// A second cache lookup right after: the outer cache span closed most
	// recently in time, but the compile span is the last one recorded, so
	// the contiguity guard must open a fresh span instead of coalescing.
	second := tr.StartSpan(PhaseCache)
	second.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (cache, compile, cache)", len(spans))
	}
	if spans[0].Phase != PhaseCache || spans[1].Phase != PhaseCompile || spans[2].Phase != PhaseCache {
		t.Fatalf("span phases = %+v", spans)
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("outer cache span %v, want >= 1ms (must cover the nested compile)", spans[0].Dur)
	}
	if got := tr.PhaseDur(PhaseCache); got != spans[0].Dur+spans[2].Dur {
		t.Errorf("PhaseDur(cache) = %v, want %v", got, spans[0].Dur+spans[2].Dur)
	}
}

// TestSpanHotPathZeroAlloc pins the tentpole's core constraint: recording a
// span on an existing trace performs no heap allocations — on the cold
// open-a-new-span path and on the coalesced repeat path alike.
func TestSpanHotPathZeroAlloc(t *testing.T) {
	tr := NewTrace()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(PhaseEvaluate) // coalesces after the first run
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("coalesced span record allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(PhaseEvaluate)
		sp.End()
		tr.n, tr.closed = 0, -1 // rewind: every run opens a fresh span
	})
	if allocs != 0 {
		t.Fatalf("fresh span record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRequestIDsUniqueAndWellFormed(t *testing.T) {
	idRe := regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{6,}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTrace().ID()
		if !idRe.MatchString(id) {
			t.Fatalf("malformed request ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context yields a trace")
	}
	if RequestID(context.Background()) != "" {
		t.Error("empty context yields a request ID")
	}
	tr := NewTrace()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace not recovered from context")
	}
	if RequestID(ctx) != tr.ID() {
		t.Error("request ID not recovered from context")
	}
	// Derived contexts (the request-timeout child the sweep receives)
	// still carry the trace.
	child, cancel := context.WithTimeout(ctx, time.Hour)
	defer cancel()
	if FromContext(child) != tr {
		t.Error("trace lost on derived context")
	}
}

func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhaseQueue: "queue", PhaseDecode: "decode", PhaseCache: "cache",
		PhaseCompile: "compile", PhaseEvaluate: "evaluate",
		PhaseSweep: "sweep", PhaseEncode: "encode",
	}
	if len(want) != NumPhases {
		t.Fatalf("phase table has %d entries, enum has %d", len(want), NumPhases)
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
	if got := Phase(200).String(); got != "phase(200)" {
		t.Errorf("out-of-range phase renders %q", got)
	}
}
