package obs

import (
	"fmt"
	"sync"
	"testing"
)

func snap(id string) Snapshot { return Snapshot{ID: id} }

func ids(ss []Snapshot) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.ID
	}
	return out
}

func TestRingMostRecentFirst(t *testing.T) {
	r := NewRing(3)
	if got := r.Last(5); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	r.Add(snap("a"))
	r.Add(snap("b"))
	got := ids(r.Last(0))
	if fmt.Sprint(got) != "[b a]" {
		t.Fatalf("Last(0) = %v, want [b a]", got)
	}

	// Wrap: capacity 3, five adds -> c,d,e retained, newest first.
	r.Add(snap("c"))
	r.Add(snap("d"))
	r.Add(snap("e"))
	if got := ids(r.Last(0)); fmt.Sprint(got) != "[e d c]" {
		t.Fatalf("wrapped Last(0) = %v, want [e d c]", got)
	}
	if got := ids(r.Last(2)); fmt.Sprint(got) != "[e d]" {
		t.Fatalf("Last(2) = %v, want [e d]", got)
	}
	if got := ids(r.Last(99)); fmt.Sprint(got) != "[e d c]" {
		t.Fatalf("Last(99) = %v, want [e d c]", got)
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Add(snap("a"))
	r.Add(snap("b"))
	if got := ids(r.Last(0)); fmt.Sprint(got) != "[b]" {
		t.Fatalf("capacity-clamped ring = %v, want [b]", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(snap(fmt.Sprintf("%d-%d", g, i)))
				r.Last(4)
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	if got := r.Last(0); len(got) != 8 {
		t.Fatalf("ring holds %d, want 8", len(got))
	}
}

func TestSnapshotCapturesTrace(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan(PhaseDecode)
	sp.End()
	sp = tr.StartSpan(PhaseSweep)
	sp.End()
	s := tr.Snapshot("sweep", 206)
	if s.ID != tr.ID() || s.Handler != "sweep" || s.Status != 206 {
		t.Fatalf("snapshot identity wrong: %+v", s)
	}
	if len(s.Spans) != 2 || s.Spans[0].Phase != "decode" || s.Spans[1].Phase != "sweep" {
		t.Fatalf("snapshot spans wrong: %+v", s.Spans)
	}
	if s.TotalS < 0 || s.Spans[1].StartS < s.Spans[0].StartS {
		t.Fatalf("snapshot timing wrong: %+v", s)
	}
	var nilTrace *Trace
	if got := nilTrace.Snapshot("x", 0); got.ID != "" {
		t.Fatalf("nil trace snapshot = %+v", got)
	}
}
