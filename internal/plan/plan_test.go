package plan

import (
	"math/rand"
	"testing"

	"amped/internal/audit"
	"amped/internal/explore"
	"amped/internal/hardware"
	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/pipesim"
	"amped/internal/precision"
	"amped/internal/transformer"
	"amped/internal/units"
)

// sweepFront reproduces the exhaustive ranking front — the first element of
// SortByTime over the full sweep: the bucket-0 cell (evaluated and fitting)
// with the minimal (rank_s, identity) pair, or nil when none exists.
func sweepFront(points []explore.Point) (*explore.Point, float64) {
	var best *explore.Point
	var bestRank float64
	for i := range points {
		p := &points[i]
		if p.Err != nil || !p.Fits || p.Breakdown == nil {
			continue
		}
		rank := float64(p.Breakdown.ExpectedTotalTime())
		if best == nil || rank < bestRank ||
			(rank == bestRank && p.String() < best.String()) {
			best, bestRank = p, rank
		}
	}
	return best, bestRank
}

// TestSolveMatchesExhaustive is the solver-vs-exhaustive equivalence
// property test: on every small randomized space from the audit generator,
// Solve returns the identical optimum — exact rank_s float64 bits and cell
// identity — as the full sweep, while (on the unconstrained spaces, where
// the ≤20%-expansion acceptance bar applies) touching only a fraction of
// the cells. Every third seed additionally enables the memory model, whose
// !Fits buckets can legitimately force the search through many cells; those
// runs assert identity only.
func TestSolveMatchesExhaustive(t *testing.T) {
	const seeds = 60
	var aggTotal, aggExpanded int64
	for seed := int64(1); seed <= seeds; seed++ {
		s := audit.Generate(rand.New(rand.NewSource(seed)))
		sc := explore.Scenario{
			Model:    &s.Model,
			System:   &s.System,
			Training: s.Training,
			Eff:      s.Eff,
		}
		opt := explore.Options{
			Batches: []int{s.Training.Batch.Global, 2 * s.Training.Batch.Global},
			Enumerate: parallel.EnumerateOptions{
				PowerOfTwo:     true,
				ExpertParallel: s.Mapping.ExpertParallel,
			},
			MicrobatchTarget: 32,
			KeepInvalid:      true,
		}
		withMemory := seed%3 == 0
		if withMemory {
			// The generator leaves Accel.Memory zero; give the device a
			// seed-dependent capacity so the spaces split between mostly
			// fitting, mixed and hopeless.
			caps := []units.Bytes{2e9, 2e10, 8e10}
			s.System.Accel.Memory = caps[int(seed)%len(caps)]
			sc.Memory = &memkit.Config{
				Operands:  s.Training.Operands,
				Optimizer: memkit.Adam,
				ZeROStage: int(seed) % 4,
				Schedule:  memkit.OneFOneB,
			}
			sc.MemoryReserve = 0.1
		}

		res, err := Solve(sc, opt)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		points, err := explore.Sweep(sc, opt)
		if err != nil {
			t.Fatalf("seed %d: Sweep: %v", seed, err)
		}
		want, wantRank := sweepFront(points)

		switch {
		case want == nil && res.Best == nil:
			// Consistently infeasible space.
		case want == nil || res.Best == nil:
			t.Fatalf("seed %d: feasibility disagreement: sweep front %v, solver best %v",
				seed, want, res.Best)
		default:
			if res.RankSeconds != wantRank {
				t.Errorf("seed %d: rank_s diverged: solver %x, sweep %x",
					seed, res.RankSeconds, wantRank)
			}
			if res.Best.String() != want.String() {
				t.Errorf("seed %d: optimum diverged: solver %q, sweep %q",
					seed, res.Best.String(), want.String())
			}
			if res.Best.Breakdown == nil || *res.Best.Breakdown != *want.Breakdown {
				t.Errorf("seed %d: optimum breakdown not byte-identical", seed)
			}
		}

		st := res.Stats
		if got := st.CellsPrunedMemory + st.CellsInfeasible + st.CellsBounded + st.CellsExpanded; got > st.CellsTotal {
			t.Errorf("seed %d: stats overcount the space: %+v", seed, st)
		}
		if withMemory {
			continue
		}
		aggTotal += st.CellsTotal
		aggExpanded += st.CellsExpanded
		// Per-space bound on the unconstrained runs: the admissible bound is
		// exact on non-MoE cells, so expansion stays near the optimum and
		// its exact ties; MoE cells carry a bound gap (the relaxed all-to-all
		// term) and get headroom.
		limit := st.CellsTotal/5 + 1
		if s.Model.MoE() {
			limit = st.CellsTotal/2 + 1
		}
		if st.CellsExpanded > limit {
			t.Errorf("seed %d: expanded %d of %d cells (limit %d, moe=%v)",
				seed, st.CellsExpanded, st.CellsTotal, limit, s.Model.MoE())
		}
	}
	if aggTotal == 0 {
		t.Fatal("no unconstrained spaces were aggregated")
	}
	if frac := float64(aggExpanded) / float64(aggTotal); frac > 0.20 {
		t.Errorf("aggregate expansion %.1f%% exceeds the 20%% acceptance bar (%d of %d cells)",
			100*frac, aggExpanded, aggTotal)
	} else {
		t.Logf("aggregate expansion %.2f%% (%d of %d cells)", 100*frac, aggExpanded, aggTotal)
	}
}

// TestSolveSPCPMemoryEquivalence is the regression case for the activation
// accounting bug: before memkit sharded activations by sequence/context
// parallelism, every cp > 1 cell carried the same footprint as its cp = 1
// sibling, so a memory budget sized between the two marked the whole space
// infeasible and the planner (whose feasibility filter is the same
// estimate) agreed on the wrong answer. The scenario is attention-heavy
// (2·a·s ≈ 4 × 16·h per token) with the device capacity set strictly
// between the cp = 2 and cp = 1 working sets: under the corrected
// accounting only context-parallel cells fit, and the branch-and-bound
// planner must land on the identical optimum as the exhaustive sweep —
// exact rank bits, identity and breakdown.
func TestSolveSPCPMemoryEquivalence(t *testing.T) {
	m := transformer.Model{
		Name:     "spcp-test",
		Layers:   8,
		Heads:    8,
		Hidden:   512,
		SeqLen:   2048,
		Vocab:    1000,
		FFNRatio: 4,
	}
	sys := hardware.System{
		Name: "spcp-sys", Accel: hardware.NvidiaA100(),
		Nodes: 2, AccelsPerNode: 4,
		Intra:       hardware.NVLinkA100(),
		Inter:       hardware.InfinibandHDR(),
		NICsPerNode: 4,
	}
	// Under GPipe every non-CP cell holds the full 16-sequence batch's
	// activations (~2.7 GB); cp = 2 shrinks the score matrices
	// quadratically (~1.6 GB). 2.2 GB splits the two populations.
	sys.Accel.Memory = 2.2e9
	mem := &memkit.Config{Operands: precision.Mixed16(), Optimizer: memkit.Adam}
	sc := explore.Scenario{
		Model:    &m,
		System:   &sys,
		Training: model.Training{NumBatches: 10},
		Memory:   mem,
	}
	opt := explore.Options{
		Batches: []int{16},
		Enumerate: parallel.EnumerateOptions{
			PowerOfTwo:       true,
			MaxCP:            2,
			MaxVPP:           2,
			SequenceParallel: true,
		},
		MicrobatchTarget: 4,
		KeepInvalid:      true,
	}

	res, err := Solve(sc, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	points, err := explore.Sweep(sc, opt)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	want, wantRank := sweepFront(points)
	if want == nil || res.Best == nil {
		t.Fatalf("space unexpectedly infeasible: sweep front %v, solver best %v", want, res.Best)
	}
	if res.RankSeconds != wantRank {
		t.Errorf("rank_s diverged: solver %x, sweep %x", res.RankSeconds, wantRank)
	}
	if res.Best.String() != want.String() {
		t.Errorf("optimum diverged: solver %q, sweep %q", res.Best.String(), want.String())
	}
	if res.Best.Breakdown == nil || *res.Best.Breakdown != *want.Breakdown {
		t.Error("optimum breakdown not byte-identical")
	}

	// The optimum only exists because the accounting shards by cp: every
	// cp = 1 cell in the space exceeds the device, so a regression back to
	// the unsharded formula empties the feasible set.
	if res.Best.Mapping.CP() <= 1 {
		t.Fatalf("optimum %v does not engage context parallelism", res.Best)
	}
	var sawUnsharded bool
	for i := range points {
		p := &points[i]
		if p.Err != nil || p.Mapping.CP() > 1 {
			continue
		}
		sawUnsharded = true
		if p.Fits {
			t.Fatalf("cp=1 cell %v fits in %v — the budget no longer separates the populations", p, p.Footprint)
		}
	}
	if !sawUnsharded {
		t.Fatal("space contains no cp=1 cells to contrast against")
	}

	// Sequence parallelism is load-bearing the same way: the SP-off twin
	// of the optimum carries the replicated norm tensors.
	spOff := res.Best.Mapping
	spOff.SequenceParallel = false
	b := parallel.Batch{Global: res.Best.Batch, Microbatches: res.Best.Microbatches}
	got, err := memkit.Estimate(&m, res.Best.Mapping, b, *mem)
	if err != nil {
		t.Fatal(err)
	}
	off, err := memkit.Estimate(&m, spOff, b, *mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Mapping.TP() > 1 && off.Activations <= got.Activations {
		t.Errorf("SP-off footprint %v not above SP-on %v", off.Activations, got.Activations)
	}
	t.Logf("optimum %v, footprint %v, expanded %d of %d cells",
		res.Best, res.Best.Footprint, res.Stats.CellsExpanded, res.Stats.CellsTotal)
}

// heteroTestModel is a small architecture the heterogeneous space stays
// tractable on.
func heteroTestModel() transformer.Model {
	return transformer.Model{
		Name:     "hetero-test",
		Layers:   12,
		Heads:    8,
		Hidden:   512,
		SeqLen:   128,
		Vocab:    1000,
		FFNRatio: 4,
	}
}

// TestSolveHeteroMatchesExhaustive cross-checks the heterogeneous
// branch-and-bound against full enumeration, including the acceptance
// criterion's mixed A100+H100 fleet, asserting the identical optimum (exact
// value bits and identity) and the aggregate ≤20% expansion bar.
func TestSolveHeteroMatchesExhaustive(t *testing.T) {
	m := heteroTestModel()
	link := hardware.Link{Name: "test-ic", Latency: 5e-6, Bandwidth: 1e11}
	cases := []struct {
		name string
		sp   HeteroSpace
	}{
		{
			name: "mixed-a100-h100",
			sp: HeteroSpace{
				Model: &m,
				Pools: []Pool{
					{Name: "a100", Accel: hardware.NvidiaA100(), Count: 8},
					{Name: "h100", Accel: hardware.NvidiaH100(), Count: 8},
				},
				Interconnect:     link,
				Batches:          []int{8, 16},
				MicrobatchTarget: 4,
				NumBatches:       10,
				Schedule:         pipesim.OneFOneB,
			},
		},
		{
			name: "mixed-uneven-pools",
			sp: HeteroSpace{
				Model: &m,
				Pools: []Pool{
					{Name: "h100", Accel: hardware.NvidiaH100(), Count: 4},
					{Name: "a100", Accel: hardware.NvidiaA100(), Count: 12},
				},
				Interconnect:     link,
				Batches:          []int{12},
				MicrobatchTarget: 2,
				Schedule:         pipesim.OneFOneB,
			},
		},
		{
			name: "homogeneous-pool-gpipe",
			sp: HeteroSpace{
				Model: &m,
				Pools: []Pool{
					{Name: "a100", Accel: hardware.NvidiaA100(), Count: 16},
				},
				Interconnect:     link,
				Batches:          []int{8, 32},
				MicrobatchTarget: 4,
				Schedule:         pipesim.GPipe,
			},
		},
	}
	var aggTotal, aggExpanded int64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := SolveHetero(tc.sp)
			if err != nil {
				t.Fatalf("SolveHetero: %v", err)
			}
			want, cells, err := ExhaustiveHetero(tc.sp)
			if err != nil {
				t.Fatalf("ExhaustiveHetero: %v", err)
			}
			if int64(len(cells)) != res.Stats.CellsTotal {
				t.Errorf("cell enumeration diverged: solver %d, exhaustive %d",
					res.Stats.CellsTotal, len(cells))
			}
			switch {
			case want == nil && res.Best == nil:
			case want == nil || res.Best == nil:
				t.Fatalf("feasibility disagreement: exhaustive %v, solver %v", want, res.Best)
			default:
				if res.Best.Value != want.Value {
					t.Errorf("value diverged: solver %x, exhaustive %x", res.Best.Value, want.Value)
				}
				if res.Best.ID != want.ID {
					t.Errorf("optimum diverged: solver %q, exhaustive %q", res.Best.ID, want.ID)
				}
			}
			aggTotal += res.Stats.CellsTotal
			aggExpanded += res.Stats.CellsExpanded
			t.Logf("expanded %d of %d cells", res.Stats.CellsExpanded, res.Stats.CellsTotal)
		})
	}
	if aggTotal == 0 {
		t.Fatal("empty heterogeneous spaces")
	}
	if frac := float64(aggExpanded) / float64(aggTotal); frac > 0.20 {
		t.Errorf("aggregate hetero expansion %.1f%% exceeds the 20%% bar (%d of %d cells)",
			100*frac, aggExpanded, aggTotal)
	}
}

// TestSolveHeteroRandomized fuzzes the equivalence over randomized mixed
// fleets: pool sizes, batches and schedules drawn from a seeded RNG, every
// space checked for the identical optimum.
func TestSolveHeteroRandomized(t *testing.T) {
	m := heteroTestModel()
	link := hardware.Link{Name: "test-ic", Latency: 2e-6, Bandwidth: 4e11}
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		sp := HeteroSpace{
			Model: &m,
			Pools: []Pool{
				{Name: "a100", Accel: hardware.NvidiaA100(), Count: 1 + r.Intn(12)},
				{Name: "h100", Accel: hardware.NvidiaH100(), Count: 1 + r.Intn(12)},
			},
			Interconnect:     link,
			Batches:          []int{1 << (1 + r.Intn(4))},
			MicrobatchTarget: 1 << r.Intn(3),
			NumBatches:       1 + r.Intn(5),
			Schedule:         pipesim.Schedule(r.Intn(2)),
		}
		res, err := SolveHetero(sp)
		if err != nil {
			t.Fatalf("seed %d: SolveHetero: %v", seed, err)
		}
		want, _, err := ExhaustiveHetero(sp)
		if err != nil {
			t.Fatalf("seed %d: ExhaustiveHetero: %v", seed, err)
		}
		switch {
		case want == nil && res.Best == nil:
		case want == nil || res.Best == nil:
			t.Fatalf("seed %d: feasibility disagreement: exhaustive %v, solver %v",
				seed, want, res.Best)
		default:
			if res.Best.Value != want.Value || res.Best.ID != want.ID {
				t.Errorf("seed %d: optimum diverged: solver (%x, %q) vs exhaustive (%x, %q)",
					seed, res.Best.Value, res.Best.ID, want.Value, want.ID)
			}
		}
	}
}
