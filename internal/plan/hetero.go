package plan

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"

	"amped/internal/efficiency"
	"amped/internal/explore"
	"amped/internal/hardware"
	"amped/internal/hetero"
	"amped/internal/parallel"
	"amped/internal/pipesim"
	"amped/internal/precision"
	"amped/internal/transformer"
	"amped/internal/units"
)

// Pool is one homogeneous accelerator pool of a mixed fleet.
type Pool struct {
	// Name labels the pool in cell identities (e.g. the preset name).
	Name string
	// Accel is the pool's accelerator.
	Accel hardware.Accelerator
	// Count is how many accelerators the pool holds.
	Count int
}

// HeteroSpace is the heterogeneous search space: mixed accelerator pools
// whose pipeline-stage assignment (how many stages each pool serves, in
// pool order) is searched jointly with the tensor-parallel width, the
// batch size and the microbatch schedule. Stage layer counts are balanced
// against per-stage speed (hetero.Balance) and each candidate is priced by
// the pipesim discrete-event simulator with per-stage speed expressed
// through StageScale. Data parallelism is out of scope, matching the
// hetero package's convention (DP replicas would simply multiply).
type HeteroSpace struct {
	// Model is the transformer architecture.
	Model *transformer.Model
	// Pools are the accelerator pools in fixed pipeline order.
	Pools []Pool
	// Interconnect carries activations between stages.
	Interconnect hardware.Link
	// Operands sets the precisions (zero value = Mixed16).
	Operands precision.Operands
	// Eff is the microbatch-efficiency model (nil = default).
	Eff efficiency.Model
	// Batches lists the global batch sizes to search (required).
	Batches []int
	// MicrobatchTarget picks N_ub like the homogeneous sweep does
	// (explore.ChooseMicrobatches); zero targets microbatch size 1.
	MicrobatchTarget int
	// MaxTP caps the per-stage tensor-parallel width (default: the model's
	// head count); widths are powers of two.
	MaxTP int
	// MaxPP caps the pipeline depth (default: the model's layer count).
	MaxPP int
	// NumBatches scales the per-batch makespan into the total-time rank
	// (default 1).
	NumBatches int
	// Schedule selects the simulated execution order (default 1F1B).
	Schedule pipesim.Schedule
}

// HeteroCell is one candidate heterogeneous deployment.
type HeteroCell struct {
	// TP is the per-stage tensor-parallel width.
	TP int
	// PP is the pipeline depth (sum of Counts).
	PP int
	// Counts is how many pipeline stages each pool serves, in pool order.
	Counts []int
	// Batch is the global batch size.
	Batch int
	// Microbatches is the chosen N_ub.
	Microbatches int
	// Value is the rank: simulated makespan × NumBatches, in seconds.
	Value float64
	// ID is the cell's deterministic identity (the tie-break key).
	ID string
	// Err records an evaluation failure.
	Err error
}

// String returns the cell's identity.
func (c *HeteroCell) String() string { return c.ID }

// HeteroResult is the heterogeneous planner's outcome.
type HeteroResult struct {
	// Best is the optimal cell (nil when nothing evaluates).
	Best *HeteroCell
	// Stats describes the search effort (memory pruning and the compute
	// floor do not apply to the heterogeneous space and stay zero).
	Stats Stats
}

func (sp *HeteroSpace) schedule() pipesim.Schedule {
	return sp.Schedule // zero value is GPipe; OneFOneB must be explicit
}

func (sp *HeteroSpace) numBatches() int {
	if sp.NumBatches <= 0 {
		return 1
	}
	return sp.NumBatches
}

// validate checks the space's fixed structure.
func (sp *HeteroSpace) validate() error {
	if sp.Model == nil {
		return errors.New("plan: hetero space needs a model")
	}
	if err := sp.Model.Validate(); err != nil {
		return err
	}
	if len(sp.Pools) == 0 {
		return errors.New("plan: hetero space needs at least one accelerator pool")
	}
	for i, pool := range sp.Pools {
		if pool.Name == "" {
			return fmt.Errorf("plan: pool %d needs a name", i)
		}
		if pool.Count < 1 {
			return fmt.Errorf("plan: pool %q count %d must be >= 1", pool.Name, pool.Count)
		}
		if err := pool.Accel.Validate(); err != nil {
			return fmt.Errorf("plan: pool %q: %w", pool.Name, err)
		}
	}
	if len(sp.Batches) == 0 {
		return errors.New("plan: hetero space needs batch sizes")
	}
	for _, b := range sp.Batches {
		if b < 1 {
			return fmt.Errorf("plan: batch %d must be >= 1", b)
		}
	}
	return nil
}

// enumerate lays out the deterministic cell order: TP widths (powers of two)
// major, then pipeline depth, then the lexicographic stage compositions
// over the pools, then the batches. Cells whose pipeline can never fill
// (no N_ub >= PP exists) are excluded up front, mirroring the homogeneous
// layout's infeasibility pre-mark.
func (sp *HeteroSpace) enumerate() []HeteroCell {
	maxTP := sp.MaxTP
	if maxTP <= 0 || maxTP > sp.Model.Heads {
		maxTP = sp.Model.Heads
	}
	maxPP := sp.MaxPP
	if maxPP <= 0 || maxPP > sp.Model.Layers {
		maxPP = sp.Model.Layers
	}
	var cells []HeteroCell
	for tp := 1; tp <= maxTP; tp *= 2 {
		// Each pool can serve at most Count/tp stages at this width.
		caps := make([]int, len(sp.Pools))
		capSum := 0
		for k, pool := range sp.Pools {
			caps[k] = pool.Count / tp
			capSum += caps[k]
		}
		if capSum == 0 {
			continue
		}
		limit := maxPP
		if capSum < limit {
			limit = capSum
		}
		for pp := 1; pp <= limit; pp++ {
			counts := make([]int, len(sp.Pools))
			sp.compose(counts, 0, pp, caps, func(c []int) {
				for _, b := range sp.Batches {
					if !explore.MicrobatchFeasible(b, pp) {
						continue
					}
					nub := explore.ChooseMicrobatches(b, pp, sp.MicrobatchTarget)
					cc := make([]int, len(c))
					copy(cc, c)
					cells = append(cells, HeteroCell{
						TP: tp, PP: pp, Counts: cc, Batch: b, Microbatches: nub,
						ID: cellID(sp.Pools, tp, pp, cc, b, nub),
					})
				}
			})
		}
	}
	return cells
}

// compose enumerates every assignment of rem stages across pools[k:] in
// lexicographic order (pool k's count ascending), respecting per-pool caps.
func (sp *HeteroSpace) compose(counts []int, k, rem int, caps []int, emit func([]int)) {
	if k == len(counts)-1 {
		if rem <= caps[k] {
			counts[k] = rem
			emit(counts)
			counts[k] = 0
		}
		return
	}
	max := rem
	if caps[k] < max {
		max = caps[k]
	}
	for c := 0; c <= max; c++ {
		counts[k] = c
		sp.compose(counts, k+1, rem-c, caps, emit)
	}
	counts[k] = 0
}

// cellID renders the deterministic identity string ranking ties break on.
func cellID(pools []Pool, tp, pp int, counts []int, batch, nub int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TP%d PP%d [", tp, pp)
	for k, pool := range pools {
		if k > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s:%d", pool.Name, counts[k])
	}
	fmt.Fprintf(&b, "] B=%d m=%d", batch, nub)
	return b.String()
}

// pipeline builds and balances the hetero.Pipeline for a cell.
func (sp *HeteroSpace) pipeline(c *HeteroCell) (hetero.Pipeline, error) {
	stages := make([]hetero.Stage, 0, c.PP)
	for k, pool := range sp.Pools {
		for i := 0; i < c.Counts[k]; i++ {
			stages = append(stages, hetero.Stage{Accel: pool.Accel, TP: c.TP})
		}
	}
	pl := hetero.Pipeline{
		Model:        sp.Model,
		Stages:       stages,
		Batch:        parallel.Batch{Global: c.Batch, Microbatches: c.Microbatches},
		Operands:     sp.Operands,
		Eff:          sp.Eff,
		Interconnect: sp.Interconnect,
	}
	return pl.Balance()
}

// evaluate prices one cell through the discrete-event simulator, writing
// Value or Err in place.
func (sp *HeteroSpace) evaluate(c *HeteroCell) {
	pl, err := sp.pipeline(c)
	if err != nil {
		c.Err = err
		return
	}
	res, _, err := pl.Simulate(sp.schedule())
	if err != nil {
		c.Err = err
		return
	}
	c.Value = float64(res.Makespan) * float64(sp.numBatches())
}

// heteroBoundGuard absorbs the float-summation-order difference between the
// closed-form bound and the simulator's event-time accumulation: both sum
// the same stage durations, but in different association orders, so they
// can disagree by a few ULPs. Scaling the bound down by 1e-12 relative —
// orders of magnitude above the worst-case rounding drift for the ≤ 512
// additions involved, orders of magnitude below any real pruning margin —
// keeps the bound admissible without giving up meaningful cuts.
const heteroBoundGuard = 1 - 1e-12

// bound computes an admissible lower bound on a cell's rank without running
// the simulation: the classic pipeline bound
//
//	max over stages s of  fill(s) + m·(fwd_s + bwd_s) + drain(s)
//
// where fill(s) is the first microbatch's forward path to stage s, the
// middle term is stage s's serialized busy work, and drain(s) is the last
// backward's path from stage s to stage 0. Every one of those segments is
// on the critical path of any work-conserving schedule (GPipe and 1F1B
// included), so the simulated makespan can never be below it. Durations are
// the exact scaled values the simulator uses (fRef × stage scale), times
// the rounding guard.
func (sp *HeteroSpace) bound(c *HeteroCell) (float64, error) {
	pl, err := sp.pipeline(c)
	if err != nil {
		return 0, err
	}
	prof, err := pl.StageTimes()
	if err != nil {
		return 0, err
	}
	var fRef units.Seconds
	for _, f := range prof.Fwd {
		if f > fRef {
			fRef = f
		}
	}
	if fRef <= 0 {
		return 0, errors.New("plan: degenerate hetero stage times")
	}
	m := float64(prof.Microbatches)
	comm := float64(prof.Comm)
	var lb, fillF, drainB float64
	for _, f := range prof.Fwd {
		scale := float64(f) / float64(fRef)
		fs := float64(fRef) * scale
		bs := float64(2*fRef) * scale
		if cand := fillF + m*(fs+bs) + drainB; cand > lb {
			lb = cand
		}
		fillF += fs + comm
		drainB += bs + comm
	}
	return lb * heteroBoundGuard * float64(sp.numBatches()), nil
}

// SolveHetero runs the best-first branch-and-bound search over the
// heterogeneous space, returning the identical optimum — exact Value and
// ID tie-break — that ExhaustiveHetero finds by evaluating every cell.
func SolveHetero(sp HeteroSpace) (*HeteroResult, error) {
	if err := sp.validate(); err != nil {
		return nil, err
	}
	cells := sp.enumerate()
	res := &HeteroResult{}
	st := &res.Stats
	st.CellsTotal = int64(len(cells))

	h := make(cellHeap, 0, len(cells))
	for i := range cells {
		lb, err := sp.bound(&cells[i])
		if err != nil {
			st.CellsInfeasible++
			continue
		}
		h = append(h, cellRef{lb: lb, id: cells[i].ID, idx: i})
	}
	heap.Init(&h)

	var bestRank float64
	var bestID string
	for h.Len() > 0 {
		c := h[0]
		if res.Best != nil &&
			(c.lb > bestRank || (c.lb == bestRank && c.id > bestID)) {
			st.CellsBounded = int64(h.Len())
			break
		}
		heap.Pop(&h)
		cell := &cells[c.idx]
		sp.evaluate(cell)
		st.CellsExpanded++
		if cell.Err != nil {
			continue
		}
		if res.Best == nil || cell.Value < bestRank ||
			(cell.Value == bestRank && c.id < bestID) {
			res.Best, bestRank, bestID = cell, cell.Value, c.id
		}
	}
	return res, nil
}

// ExhaustiveHetero evaluates every cell of the space through the identical
// evaluator and returns the optimum plus all evaluated cells — the oracle
// the equivalence property test cross-checks SolveHetero against.
func ExhaustiveHetero(sp HeteroSpace) (*HeteroCell, []HeteroCell, error) {
	if err := sp.validate(); err != nil {
		return nil, nil, err
	}
	cells := sp.enumerate()
	var best *HeteroCell
	for i := range cells {
		sp.evaluate(&cells[i])
		c := &cells[i]
		if c.Err != nil {
			continue
		}
		if best == nil || c.Value < best.Value ||
			(c.Value == best.Value && c.ID < best.ID) {
			best = c
		}
	}
	return best, cells, nil
}
