package plan

import (
	"math/rand"
	"testing"

	"amped/internal/audit"
	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/units"
)

// exhaustiveInference reproduces the serving ranking front by brute force:
// evaluate every mapping, keep the minimal (PerToken, identity) pair among
// mappings that pass the same KV-aware feasibility gate the planner applies.
func exhaustiveInference(t *testing.T, sess *model.InferenceSession, opt InferenceOptions) (parallel.Mapping, float64, bool) {
	t.Helper()
	mappings := opt.Mappings
	if len(mappings) == 0 {
		en := opt.Enumerate
		if en.MaxTP == 0 {
			en.MaxTP = sess.Model().Heads
		}
		if en.MaxPP == 0 {
			en.MaxPP = sess.Model().Layers
		}
		mappings = parallel.Enumerate(sess.System(), en)
	}
	inf := sess.Inference()
	ctx := inf.PromptLen + inf.GenTokens
	var best parallel.Mapping
	var bestRank float64
	found := false
	for _, mp := range mappings {
		if kvInfeasible(sess, mp, opt.Batch, ctx, opt.MemoryReserve) {
			continue
		}
		b, err := sess.Evaluate(mp, opt.Batch)
		if err != nil {
			continue
		}
		rank := float64(b.PerToken())
		if !found || rank < bestRank ||
			(rank == bestRank && mp.String() < best.String()) {
			best, bestRank, found = mp, rank, true
		}
	}
	return best, bestRank, found
}

// kvInfeasible mirrors the planner's gate so the cross-check filters the
// identical set of mappings.
func kvInfeasible(sess *model.InferenceSession, mp parallel.Mapping, batch, ctx int, reserve float64) bool {
	accel := sess.System().Accel
	dp := mp.DP()
	if accel.Memory <= 0 || batch%dp != 0 {
		return false
	}
	maxSeqs, err := memkit.MaxConcurrentSeqs(sess.Model(), mp.Normalized(), ctx,
		sess.Training().Operands, accel, reserve)
	return err == nil && batch/dp > maxSeqs
}

// TestSolveInferenceMatchesExhaustive is the serving analogue of the
// training planner's equivalence property: over randomized audit scenarios,
// the best-first search returns the identical optimum — exact rank float64
// bits and mapping identity — as brute-force enumeration, while expanding
// only part of the space on average.
func TestSolveInferenceMatchesExhaustive(t *testing.T) {
	const seeds = 40
	var aggTotal, aggExpanded int64
	ranked := 0
	for seed := int64(1); seed <= seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := audit.GenerateInference(r)
		sess, err := model.CompileInference(&s.Model, &s.System, s.Training, s.Eff, s.Inference)
		if err != nil {
			t.Fatalf("seed %d: CompileInference: %v", seed, err)
		}
		opt := InferenceOptions{
			Batch: s.Batch,
			Enumerate: parallel.EnumerateOptions{
				PowerOfTwo:     true,
				ExpertParallel: s.Mapping.ExpertParallel,
			},
			MemoryReserve: 0.1,
		}
		// Every third seed gives the device a capacity so the KV gate
		// engages; the generator leaves Accel.Memory zero otherwise.
		if seed%3 == 0 {
			caps := []units.Bytes{2e9, 2e10, 8e10}
			s.System.Accel.Memory = caps[int(seed)%len(caps)]
		}

		res, err := SolveInference(sess, opt)
		if err != nil {
			t.Fatalf("seed %d: SolveInference: %v", seed, err)
		}
		wantMp, wantRank, found := exhaustiveInference(t, sess, opt)

		switch {
		case !found && res.Best == nil:
			// Consistently infeasible space.
		case !found || res.Best == nil:
			t.Fatalf("seed %d: feasibility disagreement: exhaustive found=%v, solver best %v",
				seed, found, res.Best)
		default:
			ranked++
			if res.RankSeconds != wantRank {
				t.Errorf("seed %d: rank diverged: solver %x, exhaustive %x",
					seed, res.RankSeconds, wantRank)
			}
			if res.Best.Mapping.String() != wantMp.String() {
				t.Errorf("seed %d: optimum diverged: solver %q, exhaustive %q",
					seed, res.Best.Mapping.String(), wantMp.String())
			}
			if got, want := res.TokensPerSecond, res.Best.Breakdown.TokensPerSecond(); got != want {
				t.Errorf("seed %d: tokens/s %v != best breakdown's %v", seed, got, want)
			}
		}

		st := res.Stats
		if got := st.CellsPrunedMemory + st.CellsInfeasible + st.CellsBounded + st.CellsExpanded; got > st.CellsTotal {
			t.Errorf("seed %d: stats overcount the space: %+v", seed, st)
		}
		aggTotal += st.CellsTotal
		aggExpanded += st.CellsExpanded
	}
	if ranked == 0 {
		t.Fatal("no seed produced a feasible serving space")
	}
	// The admissible bound must pay for itself: on aggregate the search
	// expands well under the whole space (non-MoE spaces expand only the
	// optimum and its exact ties).
	if frac := float64(aggExpanded) / float64(aggTotal); frac > 0.6 {
		t.Errorf("search expanded %.0f%% of the aggregate space", 100*frac)
	}
}

// TestSolveInferenceKVGate pins the feasibility gate end to end: a tight
// device capacity must discard over-ceiling mappings (visible in the stats)
// and steer the optimum toward wider sharding.
func TestSolveInferenceKVGate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var s audit.InferenceScenario
	// Draw until the space has tensor parallelism to trade against DP.
	for i := 0; i < 100; i++ {
		s = audit.GenerateInference(r)
		if s.System.AccelsPerNode >= 2 && s.Model.Heads%2 == 0 {
			break
		}
	}
	sess, err := model.CompileInference(&s.Model, &s.System, s.Training, s.Eff, s.Inference)
	if err != nil {
		t.Fatal(err)
	}
	opt := InferenceOptions{
		Batch: s.Batch,
		Enumerate: parallel.EnumerateOptions{
			PowerOfTwo:     true,
			ExpertParallel: s.Mapping.ExpertParallel,
		},
	}
	open, err := SolveInference(sess, opt)
	if err != nil {
		t.Fatal(err)
	}
	if open.Stats.CellsPrunedMemory != 0 {
		t.Fatalf("unmodeled memory pruned %d cells", open.Stats.CellsPrunedMemory)
	}

	// Shrink capacity until the gate engages; the search must still agree
	// with the gated brute force (covered by the property test) and report
	// the pruning.
	for _, capacity := range []units.Bytes{1e12, 1e10, 1e8, 1e6} {
		s.System.Accel.Memory = capacity
		res, err := SolveInference(sess, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.CellsPrunedMemory > 0 {
			if res.Best != nil && res.Best.MaxSeqs > 0 &&
				opt.Batch/res.Best.Mapping.DP() > res.Best.MaxSeqs {
				t.Fatalf("optimum violates its own KV ceiling: %+v", res.Best)
			}
			return
		}
	}
	t.Fatal("KV gate never engaged even at 1 MB of device memory")
}
