package plan

import (
	"container/heap"
	"errors"
	"fmt"

	"amped/internal/memkit"
	"amped/internal/model"
	"amped/internal/parallel"
)

// Serving-mapping search. The training planner minimizes the expected run
// time of a fixed recipe; the serving planner minimizes the steady-state
// per-token step time of a fixed concurrent-sequence count — with the
// serving batch fixed, the mapping that minimizes PerToken is exactly the
// mapping that maximizes tokens/s, so the rank key stays a time and the
// bound stays admissible. InferenceSession.LowerBound carries the same
// contract as the training bound (the MoE all-to-all term relaxed to
// exactly zero in the same association order): bit-identical to the true
// rank on non-MoE mappings, never above it otherwise.

// InferenceOptions selects the serving search space.
type InferenceOptions struct {
	// Mappings lists explicit mappings to rank. Empty means enumerate all
	// mappings valid for the session's system via parallel.Enumerate.
	Mappings []parallel.Mapping
	// Enumerate configures the enumeration when Mappings is empty. MaxTP
	// and MaxPP default to the model's head and layer counts.
	Enumerate parallel.EnumerateOptions
	// Batch is the concurrent-sequence count across the fleet (required).
	Batch int
	// MemoryReserve is the fraction of device memory held back for
	// framework overhead in the KV-cache feasibility gate.
	MemoryReserve float64
}

// InferencePoint is one ranked serving mapping.
type InferencePoint struct {
	Mapping   parallel.Mapping
	Breakdown *model.InferenceBreakdown
	// MaxSeqs is the KV-aware per-replica concurrent-sequence ceiling at
	// the full context length (0 when device memory is unmodeled).
	MaxSeqs int
	Err     error
}

// String identifies the point.
func (p InferencePoint) String() string {
	return p.Mapping.String()
}

// InferenceResult is the serving planner's outcome.
type InferenceResult struct {
	// Best is the optimal feasible mapping: minimal per-token step time,
	// ties broken by the mapping's string identity. Nil when no mapping is
	// feasible.
	Best *InferencePoint
	// RankSeconds is Best's exact rank key (float64 of the per-token step
	// time); 0 when Best is nil.
	RankSeconds float64
	// TokensPerSecond is Best's fleet decode throughput; 0 when Best is nil.
	TokensPerSecond float64
	// Stats describes the search effort (ComputeFloorSeconds stays 0 — the
	// training-only root statistic has no serving analogue).
	Stats Stats
}

// SolveInference runs the best-first branch-and-bound search over the
// serving mappings: each mapping is bounded by the session's admissible
// relaxed-MoE bound, and expansion stops as soon as the best unexpanded
// bound can no longer beat (or tie-and-win against) the incumbent. When
// the accelerator's memory is modeled, mappings whose per-replica batch
// exceeds the KV-aware concurrent-sequence ceiling are discarded before
// bounding — the decode state would not fit, no matter how fast the step.
func SolveInference(sess *model.InferenceSession, opt InferenceOptions) (*InferenceResult, error) {
	if sess == nil {
		return nil, errors.New("plan: nil inference session")
	}
	if opt.Batch <= 0 {
		return nil, fmt.Errorf("plan: serving batch %d must be positive", opt.Batch)
	}
	mappings := opt.Mappings
	if len(mappings) == 0 {
		en := opt.Enumerate
		if en.MaxTP == 0 {
			en.MaxTP = sess.Model().Heads
		}
		if en.MaxPP == 0 {
			en.MaxPP = sess.Model().Layers
		}
		mappings = parallel.Enumerate(sess.System(), en)
	}
	if len(mappings) == 0 {
		return nil, errors.New("plan: no mappings to rank")
	}

	res := &InferenceResult{}
	st := &res.Stats
	st.CellsTotal = int64(len(mappings))

	m := sess.Model()
	inf := sess.Inference()
	ctx := inf.PromptLen + inf.GenTokens
	ops := sess.Training().Operands
	accel := sess.System().Accel

	points := make([]InferencePoint, len(mappings))
	h := make(cellHeap, 0, len(mappings))
	for i, mp := range mappings {
		points[i] = InferencePoint{Mapping: mp}
		// KV-cache feasibility gate: dominance, not pricing — the ceiling
		// depends only on the mapping, so an over-ceiling mapping is
		// discarded without bounding. Non-dividing batches fall through to
		// the bound, which rejects them with the evaluator's own error.
		if dp := mp.DP(); accel.Memory > 0 && opt.Batch%dp == 0 {
			maxSeqs, err := memkit.MaxConcurrentSeqs(m, mp.Normalized(), ctx, ops, accel, opt.MemoryReserve)
			if err == nil {
				points[i].MaxSeqs = maxSeqs
				if opt.Batch/dp > maxSeqs {
					points[i].Err = fmt.Errorf(
						"plan: %v B=%d infeasible: per-replica batch %d exceeds KV-aware ceiling %d",
						mp, opt.Batch, opt.Batch/dp, maxSeqs)
					st.CellsPrunedMemory++
					continue
				}
			}
		}
		lb, err := sess.LowerBound(mp, opt.Batch)
		if err != nil {
			// The full evaluation shares the bound's validation prefix and
			// would fail with the identical error.
			points[i].Err = err
			st.CellsInfeasible++
			continue
		}
		h = append(h, cellRef{lb: lb, id: mp.String(), idx: i})
	}
	heap.Init(&h)

	bds := make([]model.InferenceBreakdown, len(mappings))
	var bestRank float64
	var bestID string
	for h.Len() > 0 {
		c := h[0]
		if res.Best != nil &&
			(c.lb > bestRank || (c.lb == bestRank && c.id > bestID)) {
			st.CellsBounded = int64(h.Len())
			break
		}
		heap.Pop(&h)
		p := &points[c.idx]
		st.CellsExpanded++
		if err := sess.EvaluateInferencePoint(p.Mapping, opt.Batch, &bds[c.idx]); err != nil {
			p.Err = err
			continue
		}
		p.Breakdown = &bds[c.idx]
		rank := float64(p.Breakdown.PerToken())
		if res.Best == nil || rank < bestRank || (rank == bestRank && c.id < bestID) {
			res.Best, bestRank, bestID = p, rank, c.id
		}
	}
	if res.Best != nil {
		res.RankSeconds = bestRank
		res.TokensPerSecond = res.Best.Breakdown.TokensPerSecond()
	}
	return res, nil
}
