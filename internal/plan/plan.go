// Package plan is AMPeD's solver-grade mapping planner: a best-first
// branch-and-bound search over the exact cell enumeration the exhaustive
// sweep (internal/explore) walks, returning the identical optimum — the
// exact rank_s key, byte for byte — while fully evaluating only a fraction
// of the cells.
//
// Three ingredients make the search sound and cross-checkable:
//
//   - Admissible lower bounds. Each cell is bounded by
//     model.Session.LowerBound — the production evaluation with the Eq. 9
//     MoE all-to-all term relaxed to exactly zero, in the same association
//     order, so the bound is bit-identical to the true rank on every
//     non-MoE cell and never above it otherwise (monotonicity of IEEE-754
//     rounded arithmetic). The compute-only internal/baseline predictor is
//     quoted as a root statistic (Stats.ComputeFloorSeconds) but never used
//     for pruning: its fixed utilization and backward factor are not
//     admissible against the efficiency-derated analytical model.
//
//   - Dominance pruning of memory-infeasible (TP, PP) prefixes. When the
//     scenario enables the memory model, memkit.ParamsFloor lower-bounds
//     every cell in a (TP, PP) group by its parameter bytes alone (ZeRO-3
//     sharding taken at the group's largest DP); a floor above the usable
//     capacity proves the whole group !Fits and it is pruned without
//     evaluating a single cell.
//
//   - The canonical cell order. Cells come from explore.Layout — the same
//     mapping-major, batch-minor enumeration, microbatch schedules and
//     infeasibility pre-marks the sweep uses — so Solve's result is
//     directly comparable against explore.Sweep cell-for-cell, and the
//     equivalence is enforced by a randomized property test over the audit
//     generator's scenario space.
//
// Ranking matches the sweep's SortByTime front: feasible cells ordered by
// the exact float64(Breakdown.ExpectedTotalTime()) rank key, ties broken by
// the cell's Point.String() identity. Expansion stops as soon as the best
// unexpanded bound can no longer beat (or tie-and-win against) the
// incumbent, which on a fully non-MoE space means the optimum plus its
// exact-tie peers are the only cells ever fully evaluated.
package plan

import (
	"container/heap"

	"amped/internal/baseline"
	"amped/internal/explore"
	"amped/internal/memkit"
	"amped/internal/model"
)

// Stats reports how much of the cell space the search actually touched.
type Stats struct {
	// CellsTotal is the size of the laid-out cell enumeration.
	CellsTotal int64
	// CellsPrunedMemory counts cells discarded by the (TP, PP) parameter
	// floor dominance test before bounding.
	CellsPrunedMemory int64
	// CellsInfeasible counts cells whose schedule or validation makes them
	// unrankable (layout pre-marks, bound-time validation errors) — the
	// full evaluation would fail identically, so they are never expanded.
	CellsInfeasible int64
	// CellsBounded counts cells that received a lower bound but were cut
	// off by it: the search terminated with them still unexpanded.
	CellsBounded int64
	// CellsExpanded counts cells that were fully evaluated.
	CellsExpanded int64
	// ComputeFloorSeconds is the compute-only baseline floor for the
	// scenario's smallest batch at utilization 1, scaled to the recipe's
	// batch count — a root-level sanity statistic, not a pruning bound.
	ComputeFloorSeconds float64
}

// ExpandedFraction is CellsExpanded / CellsTotal (0 on an empty space).
func (s Stats) ExpandedFraction() float64 {
	if s.CellsTotal == 0 {
		return 0
	}
	return float64(s.CellsExpanded) / float64(s.CellsTotal)
}

// Result is the planner's outcome for one scenario.
type Result struct {
	// Best is the optimal feasible cell — identical, including the exact
	// rank key and tie-break, to the front of the exhaustive sweep's
	// SortByTime ranking. Nil when no cell is feasible.
	Best *explore.Point
	// RankSeconds is Best's exact rank_s key
	// (float64(Breakdown.ExpectedTotalTime())); 0 when Best is nil.
	RankSeconds float64
	// Stats describes the search effort.
	Stats Stats
}

// cellRef is one heap entry: a cell's admissible bound and identity.
type cellRef struct {
	lb  float64
	id  string
	idx int
}

// cellHeap is a min-heap over (lb, id) — the same lexicographic order the
// incumbent comparison uses, so the peeked minimum is exactly the first
// cell that could still improve the result.
type cellHeap []cellRef

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	if h[i].lb != h[j].lb {
		return h[i].lb < h[j].lb
	}
	return h[i].id < h[j].id
}
func (h cellHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x any) { *h = append(*h, x.(cellRef)) }
func (h *cellHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve runs the branch-and-bound search over the scenario's cell space.
// The scenario and options mean exactly what they mean to explore.Sweep —
// including a supplied pre-compiled Session and CursorLo/CursorHi shard
// ranges — and the returned Best matches the exhaustive sweep's ranking
// front byte-for-byte (both nil when no cell is feasible).
func Solve(sc explore.Scenario, opt explore.Options) (*Result, error) {
	points, sess, err := explore.Layout(&sc, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	st := &res.Stats
	st.CellsTotal = int64(len(points))
	st.ComputeFloorSeconds = computeFloor(&sc, sess, opt)

	pruned := pruneMemoryPrefixes(points, &sc, st)

	h := make(cellHeap, 0, len(points))
	for i := range points {
		if pruned != nil && pruned[i] {
			continue
		}
		p := &points[i]
		if p.Err != nil {
			st.CellsInfeasible++
			continue
		}
		lb, err := explore.CellLowerBound(p, sess)
		if err != nil {
			// The full evaluation shares the bound's validation prefix and
			// would fail with the identical error: bucket-2 in the sweep's
			// ranking, never the optimum.
			st.CellsInfeasible++
			continue
		}
		h = append(h, cellRef{lb: lb, id: p.String(), idx: i})
	}
	heap.Init(&h)

	bds := make([]model.Breakdown, len(points))
	var bestRank float64
	var bestID string
	for h.Len() > 0 {
		c := h[0]
		if res.Best != nil &&
			(c.lb > bestRank || (c.lb == bestRank && c.id > bestID)) {
			// Admissibility: every remaining cell's true rank is >= its
			// bound, and the bound already loses the (rank, id) tie-break
			// against the incumbent. Nothing left can improve the result.
			st.CellsBounded = int64(h.Len())
			break
		}
		heap.Pop(&h)
		p := &points[c.idx]
		explore.EvaluateCell(p, &bds[c.idx], sess, &sc)
		st.CellsExpanded++
		if p.Err != nil || !p.Fits || p.Breakdown == nil {
			continue
		}
		rank := float64(p.Breakdown.ExpectedTotalTime())
		if res.Best == nil || rank < bestRank || (rank == bestRank && c.id < bestID) {
			res.Best, bestRank, bestID = p, rank, c.id
		}
	}
	if res.Best != nil {
		res.RankSeconds = bestRank
	}
	return res, nil
}

// computeFloor derives the root-level compute-only statistic: the baseline
// predictor's floor for the smallest swept batch at utilization 1, scaled
// by the recipe's batch count. Purely informational (see the package
// comment for why it is not an admissible pruning bound); any derivation
// error simply reports 0.
func computeFloor(sc *explore.Scenario, sess *model.Session, opt explore.Options) float64 {
	if len(opt.Batches) == 0 {
		return 0
	}
	minB := opt.Batches[0]
	for _, b := range opt.Batches[1:] {
		if b < minB {
			minB = b
		}
	}
	tr := sess.Training()
	pred := &baseline.Predictor{
		Model:       sc.Model,
		Accel:       sc.System.Accel,
		Workers:     sc.System.Nodes * sc.System.AccelsPerNode,
		Utilization: 1,
	}
	f, err := pred.ComputeFloor(minB, tr.BackwardComputeFactor)
	if err != nil {
		return 0
	}
	return float64(f) * float64(tr.NumBatches)
}

// pruneMemoryPrefixes runs the (TP, PP) dominance test when the scenario
// enables the memory model: a group whose parameter floor alone exceeds the
// usable capacity cannot contain a fitting cell (every other footprint
// component only adds), so all its cells are discarded unevaluated. Returns
// nil when the memory model is off.
func pruneMemoryPrefixes(points []explore.Point, sc *explore.Scenario, st *Stats) []bool {
	if sc.Memory == nil {
		return nil
	}
	type group struct{ tp, pp int }
	maxDP := make(map[group]int)
	for i := range points {
		mp := points[i].Mapping
		g := group{mp.TP(), mp.PP()}
		if dp := mp.DP(); dp > maxDP[g] {
			maxDP[g] = dp
		}
	}
	usable := float64(sc.System.Accel.Memory) * (1 - sc.MemoryReserve)
	infeasible := make(map[group]bool, len(maxDP))
	for g, dp := range maxDP {
		floor := memkit.ParamsFloor(sc.Model, g.tp, g.pp, dp, *sc.Memory)
		infeasible[g] = float64(floor) > usable
	}
	pruned := make([]bool, len(points))
	for i := range points {
		mp := points[i].Mapping
		if infeasible[group{mp.TP(), mp.PP()}] {
			pruned[i] = true
			st.CellsPrunedMemory++
		}
	}
	return pruned
}
