// Package topology provides the topology factors of AMPeD's communication
// equations: the number of communication steps a collective needs on a given
// physical topology, divided by the number of participating accelerators.
//
// For a ring all-reduce over N workers the factor is 2(N-1)/N (Eq. 6 text);
// for a pairwise-exchange all-to-all it is (N-1)/N (Eq. 9 text). The factor
// multiplies both the latency term (steps) and the bandwidth term (fraction
// of the data each worker must move).
package topology

import "fmt"

// Kind names a collective-algorithm/topology combination.
type Kind int

const (
	// Ring is a ring all-reduce: reduce-scatter then all-gather, 2(N-1)
	// steps, each moving 1/N of the data. Factor: 2(N-1)/N.
	Ring Kind = iota
	// Tree is a binary-tree all-reduce: reduce up, broadcast down. The
	// whole payload crosses each level; factor ~ 2·ceil(log2 N)/N on the
	// step count with full-size transfers, modeled as 2·log2(N)/N·N = the
	// per-worker share 2·ceil(log2 N)/N... see Factor for the exact form.
	Tree
	// PairwiseAllToAll is the default MoE exchange: every worker sends a
	// distinct 1/N shard to every other worker in N-1 steps. Factor:
	// (N-1)/N.
	PairwiseAllToAll
	// PointToPoint is a single direct transfer (pipeline stages). The
	// paper's Eq. 7 needs no factor; Factor returns 1.
	PointToPoint
	// Torus2D is a ring all-reduce decomposed over the two dimensions of a
	// (near-)square 2D torus: 2(√n-1)/√n per dimension, halving the
	// serialized step count of a flat ring at the same per-worker volume
	// asymptote.
	Torus2D
)

// String returns the topology name.
func (k Kind) String() string {
	switch k {
	case Ring:
		return "ring"
	case Tree:
		return "tree"
	case PairwiseAllToAll:
		return "pairwise all-to-all"
	case PointToPoint:
		return "point-to-point"
	case Torus2D:
		return "2d-torus"
	default:
		return fmt.Sprintf("topology.Kind(%d)", int(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= Ring && k <= Torus2D }

// ParseKind resolves a collective name to its Kind: the String() names plus
// the short aliases "pairwise", "p2p" and "torus2d". Matching is
// case-insensitive on ASCII letters.
func ParseKind(name string) (Kind, error) {
	switch lowerASCII(name) {
	case "ring":
		return Ring, nil
	case "tree":
		return Tree, nil
	case "pairwise", "pairwise all-to-all", "all-to-all":
		return PairwiseAllToAll, nil
	case "point-to-point", "p2p":
		return PointToPoint, nil
	case "2d-torus", "torus2d", "torus":
		return Torus2D, nil
	default:
		return 0, fmt.Errorf("topology: unknown collective kind %q (want ring, tree, pairwise, point-to-point or 2d-torus)", name)
	}
}

// lowerASCII lowercases ASCII letters without pulling in strings/unicode.
func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// ceilLog2 returns ceil(log2(n)) for n >= 1.
func ceilLog2(n int) int {
	steps := 0
	for v := 1; v < n; v <<= 1 {
		steps++
	}
	return steps
}

// Factor returns the topology factor T for a collective over n workers:
// communication steps divided by participating accelerators, following the
// paper's definition. n <= 1 means no communication, factor 0 (except
// PointToPoint, which is a single hop whenever it happens at all).
func Factor(k Kind, n int) float64 {
	if n <= 1 && k != PointToPoint {
		return 0
	}
	switch k {
	case Ring:
		return 2 * float64(n-1) / float64(n)
	case Tree:
		return 2 * float64(ceilLog2(n)) / float64(n)
	case PairwiseAllToAll:
		return float64(n-1) / float64(n)
	case PointToPoint:
		return 1
	case Torus2D:
		side := intSqrt(n)
		return 2 * 2 * float64(side-1) / float64(side) / 2 // two dims, half-volume each
	default:
		panic(fmt.Sprintf("topology: unknown kind %d", int(k)))
	}
}

// intSqrt returns the integer square root (floor), at least 1.
func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// Steps returns the number of serialized communication steps the collective
// performs, the multiplier on the per-step link latency.
func Steps(k Kind, n int) int {
	if n <= 1 && k != PointToPoint {
		return 0
	}
	switch k {
	case Ring:
		return 2 * (n - 1)
	case Tree:
		return 2 * ceilLog2(n)
	case PairwiseAllToAll:
		return n - 1
	case PointToPoint:
		return 1
	case Torus2D:
		return 2 * 2 * (intSqrt(n) - 1)
	default:
		panic(fmt.Sprintf("topology: unknown kind %d", int(k)))
	}
}

// Choice selects the topology used for each collective class in a system
// description. The zero value is the paper's default (ring all-reduce,
// pairwise all-to-all).
type Choice struct {
	// AllReduce is used for TP activation reductions and DP gradient
	// reductions.
	AllReduce Kind
	// AllToAll is used for MoE token exchange.
	AllToAll Kind
}

// DefaultChoice returns the paper's defaults: ring all-reduce and pairwise
// all-to-all exchange.
func DefaultChoice() Choice {
	return Choice{AllReduce: Ring, AllToAll: PairwiseAllToAll}
}

// Validate reports an error if either kind is undefined.
func (c Choice) Validate() error {
	if !c.AllReduce.Valid() {
		return fmt.Errorf("topology: invalid all-reduce kind %d", int(c.AllReduce))
	}
	if !c.AllToAll.Valid() {
		return fmt.Errorf("topology: invalid all-to-all kind %d", int(c.AllToAll))
	}
	return nil
}
