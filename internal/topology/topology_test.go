package topology

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRingFactor(t *testing.T) {
	// The paper's example: ring all-reduce over N_TP workers within a node
	// gives 2(N-1)/N.
	cases := []struct {
		n    int
		want float64
	}{
		{1, 0}, {2, 1}, {4, 1.5}, {8, 1.75}, {1024, 2 * 1023.0 / 1024},
	}
	for _, c := range cases {
		if got := Factor(Ring, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Factor(Ring, %d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestPairwiseFactor(t *testing.T) {
	// Eq. 9: default pairwise exchange all-to-all has (N-1)/N.
	cases := []struct {
		n    int
		want float64
	}{
		{1, 0}, {2, 0.5}, {128, 127.0 / 128},
	}
	for _, c := range cases {
		if got := Factor(PairwiseAllToAll, c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Factor(PairwiseAllToAll, %d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestPointToPoint(t *testing.T) {
	for _, n := range []int{1, 2, 64} {
		if got := Factor(PointToPoint, n); got != 1 {
			t.Errorf("Factor(PointToPoint, %d) = %v, want 1", n, got)
		}
		if got := Steps(PointToPoint, n); got != 1 {
			t.Errorf("Steps(PointToPoint, %d) = %v, want 1", n, got)
		}
	}
}

func TestTreeFactor(t *testing.T) {
	if got := Factor(Tree, 8); math.Abs(got-2*3.0/8) > 1e-12 {
		t.Errorf("Factor(Tree, 8) = %v, want 0.75", got)
	}
	if got := Steps(Tree, 9); got != 2*4 {
		t.Errorf("Steps(Tree, 9) = %d, want 8 (ceil log2)", got)
	}
}

func TestSteps(t *testing.T) {
	if got := Steps(Ring, 8); got != 14 {
		t.Errorf("Steps(Ring, 8) = %d, want 14", got)
	}
	if got := Steps(PairwiseAllToAll, 8); got != 7 {
		t.Errorf("Steps(PairwiseAllToAll, 8) = %d, want 7", got)
	}
	if got := Steps(Ring, 1); got != 0 {
		t.Errorf("Steps(Ring, 1) = %d, want 0", got)
	}
}

func TestFactorProperties(t *testing.T) {
	// For every collective kind: factor is non-negative, bounded by its
	// asymptote, and Steps/n == Factor for the linear-step topologies.
	f := func(raw uint8) bool {
		n := int(raw)%512 + 1
		ring := Factor(Ring, n)
		pair := Factor(PairwiseAllToAll, n)
		if ring < 0 || ring >= 2 || pair < 0 || pair >= 1 {
			return false
		}
		if n > 1 {
			if math.Abs(ring-float64(Steps(Ring, n))/float64(n)) > 1e-12 {
				return false
			}
			if math.Abs(pair-float64(Steps(PairwiseAllToAll, n))/float64(n)) > 1e-12 {
				return false
			}
		}
		// Monotone in n: more workers never shrink the factor.
		return Factor(Ring, n+1) >= ring && Factor(PairwiseAllToAll, n+1) >= pair
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeBeatsRingAtScale(t *testing.T) {
	// Motivation for exposing topology as a knob: tree all-reduce has a
	// lower factor than ring for large N (fewer serialized full transfers
	// per worker), which matters for the latency-bound gradient reduction.
	if Factor(Tree, 1024) >= Factor(Ring, 1024) {
		t.Errorf("tree factor %v not below ring %v at n=1024",
			Factor(Tree, 1024), Factor(Ring, 1024))
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Ring:             "ring",
		Tree:             "tree",
		PairwiseAllToAll: "pairwise all-to-all",
		PointToPoint:     "point-to-point",
		Kind(99):         "topology.Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Factor(unknown) did not panic")
		}
	}()
	Factor(Kind(99), 4)
}

func TestChoiceValidate(t *testing.T) {
	if err := DefaultChoice().Validate(); err != nil {
		t.Errorf("default choice invalid: %v", err)
	}
	bad := Choice{AllReduce: Kind(99), AllToAll: PairwiseAllToAll}
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid all-reduce kind accepted")
	}
	if !strings.Contains(err.Error(), "all-reduce") {
		t.Errorf("error %q does not name the field", err)
	}
	bad = Choice{AllReduce: Ring, AllToAll: Kind(-1)}
	if err := bad.Validate(); err == nil {
		t.Error("invalid all-to-all kind accepted")
	}
}

func TestTorus2D(t *testing.T) {
	// A 64-worker (8x8) torus: each dimension runs a ring over 8 with half
	// the payload, so the factor is 2·(7/8) total and the steps 4·7.
	if got, want := Factor(Torus2D, 64), 2*7.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("Factor(Torus2D, 64) = %v, want %v", got, want)
	}
	if got := Steps(Torus2D, 64); got != 28 {
		t.Errorf("Steps(Torus2D, 64) = %d, want 28", got)
	}
	// Fewer serialized steps than a flat ring at large n: the latency win.
	if Steps(Torus2D, 1024) >= Steps(Ring, 1024) {
		t.Errorf("torus steps %d not below ring %d", Steps(Torus2D, 1024), Steps(Ring, 1024))
	}
	// Comparable bandwidth factor (both approach 2).
	if f := Factor(Torus2D, 1024); f < 1.5 || f > 2 {
		t.Errorf("torus factor at 1024 = %v", f)
	}
	if !Torus2D.Valid() || Torus2D.String() != "2d-torus" {
		t.Errorf("torus kind broken: %v", Torus2D)
	}
	if got := Factor(Torus2D, 1); got != 0 {
		t.Errorf("single-worker torus = %v", got)
	}
}
