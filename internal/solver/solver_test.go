package solver

import (
	"strings"
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// request returns a solvable planning problem: Megatron 145B, DGX-A100
// nodes, ~300B tokens.
func request(targetDays float64) Request {
	m := transformer.Megatron145B()
	template := hardware.CaseStudy1System() // per-node shape; Nodes is overridden
	return Request{
		Model:    &m,
		Template: template,
		Training: model.Training{
			Batch:      parallel.Batch{Global: 8192},
			NumBatches: 17880,
		},
		TargetDays: targetDays,
		MaxNodes:   512,
	}
}

func TestMinimumNodesFindsPlan(t *testing.T) {
	plan, err := MinimumNodes(request(40))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Days > 40 {
		t.Errorf("plan misses deadline: %v days", plan.Days)
	}
	if plan.Accelerators != plan.Nodes*8 {
		t.Errorf("accelerators = %d for %d nodes", plan.Accelerators, plan.Nodes)
	}
	if plan.Breakdown == nil {
		t.Fatal("no breakdown")
	}
	// Every rejected size was genuinely slower than the deadline.
	for _, c := range plan.Rejected {
		if c.Days >= 0 && c.Days <= 40 {
			t.Errorf("rejected size %d nodes met the deadline at %v days", c.Nodes, c.Days)
		}
		if c.Nodes >= plan.Nodes {
			t.Errorf("rejected size %d not below the plan's %d", c.Nodes, plan.Nodes)
		}
	}
}

func TestTighterDeadlineNeedsMoreNodes(t *testing.T) {
	loose, err := MinimumNodes(request(80))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := MinimumNodes(request(25))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Nodes <= loose.Nodes {
		t.Errorf("25-day plan (%d nodes) not above 80-day plan (%d nodes)",
			tight.Nodes, loose.Nodes)
	}
}

func TestImpossibleDeadline(t *testing.T) {
	req := request(0.01) // 15 minutes for 300B tokens
	req.MaxNodes = 64
	_, err := MinimumNodes(req)
	if err == nil {
		t.Fatal("impossible deadline produced a plan")
	}
	if !strings.Contains(err.Error(), "no machine") {
		t.Errorf("error = %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	var nilReq *Request
	if err := nilReq.Validate(); err == nil {
		t.Error("nil request accepted")
	}
	r := request(10)
	r.TargetDays = 0
	if err := r.Validate(); err == nil {
		t.Error("zero deadline accepted")
	}
	r = request(10)
	r.Template.AccelsPerNode = 0
	if err := r.Validate(); err == nil {
		t.Error("empty template accepted")
	}
	r = request(10)
	r.Training.Batch.Global = 0
	if err := r.Validate(); err == nil {
		t.Error("missing batch accepted")
	}
	r = request(10)
	broken := *r.Model
	broken.Heads = 7
	r.Model = &broken
	if err := r.Validate(); err == nil {
		t.Error("broken model accepted")
	}
}

// regressingRequest builds a problem whose scaling curve goes the wrong
// way: one node is all fast intra-node links, while every larger machine
// pays for an atrocious inter-node fabric, so doubling past the first fit
// regresses the best achievable time.
func regressingRequest(t *testing.T) Request {
	t.Helper()
	m := transformer.Model{
		Name:     "regress",
		Layers:   8,
		Heads:    8,
		Hidden:   1024,
		SeqLen:   512,
		Vocab:    32000,
		FFNRatio: 4,
	}
	template := hardware.CaseStudy1System()
	template.Inter = hardware.Link{
		Name:      "awful-fabric",
		Latency:   5, // seconds per hop: any inter-node collective is hopeless
		Bandwidth: 1e6,
	}
	return Request{
		Model:    &m,
		Template: template,
		Training: model.Training{
			Batch:      parallel.Batch{Global: 64},
			NumBatches: 100,
		},
		MaxNodes:   8,
		TargetDays: 1, // placeholder; tests pin it from the 1-node optimum
	}
}

func TestNonMonotonicFeasibilityDetected(t *testing.T) {
	req := regressingRequest(t)
	one, err := req.bestAt(1)
	if err != nil || one == nil {
		t.Fatalf("no 1-node baseline: best=%v err=%v", one, err)
	}
	two, err := req.bestAt(2)
	if err != nil || two == nil {
		t.Fatalf("no 2-node probe point: best=%v err=%v", two, err)
	}
	d1 := one.Breakdown.ExpectedTotalTime().Days()
	d2 := two.Breakdown.ExpectedTotalTime().Days()
	if d2 <= d1 {
		t.Fatalf("scenario did not regress: 1 node %v days, 2 nodes %v days", d1, d2)
	}
	// Deadline between the two: 1 node fits, the doubled probe misses.
	req.TargetDays = (d1 + d2) / 2
	_, err = MinimumNodes(req)
	if err == nil {
		t.Fatal("regressing scaling curve produced a plan")
	}
	if !strings.Contains(err.Error(), "non-monotonic feasibility") {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(err.Error(), "1 nodes") || !strings.Contains(err.Error(), "2 nodes") {
		t.Errorf("error does not name both data points: %v", err)
	}
}

func TestNonMonotonicProbeSkippedAtMaxNodes(t *testing.T) {
	// The same regressing scenario, but the search is capped at the fitting
	// size: there is no doubled size to probe, so the fit stands.
	req := regressingRequest(t)
	one, err := req.bestAt(1)
	if err != nil || one == nil {
		t.Fatalf("no 1-node baseline: best=%v err=%v", one, err)
	}
	two, err := req.bestAt(2)
	if err != nil || two == nil {
		t.Fatalf("no 2-node probe point: best=%v err=%v", two, err)
	}
	req.TargetDays = (one.Breakdown.ExpectedTotalTime().Days() +
		two.Breakdown.ExpectedTotalTime().Days()) / 2
	req.MaxNodes = 1
	plan, err := MinimumNodes(req)
	if err != nil {
		t.Fatalf("capped search should accept the fit: %v", err)
	}
	if plan.Nodes != 1 {
		t.Errorf("plan sized %d nodes, want 1", plan.Nodes)
	}
}

func TestScalingCurveMonotoneEnough(t *testing.T) {
	// The rejected-size curve should broadly improve with machine size
	// (mapping quantization allows small local wobbles, so require each
	// doubling to not be worse than 1.05x the previous best).
	plan, err := MinimumNodes(request(15))
	if err != nil {
		t.Fatal(err)
	}
	best := 1e18
	for _, c := range plan.Rejected {
		if c.Days < 0 {
			continue
		}
		if c.Days > best*1.05 {
			t.Errorf("scaling curve regressed at %d nodes: %v days after best %v",
				c.Nodes, c.Days, best)
		}
		if c.Days < best {
			best = c.Days
		}
	}
}
