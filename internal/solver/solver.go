// Package solver answers inverse capacity-planning questions on top of the
// analytical model: instead of "how long does this machine take?", it
// searches "how much machine does this deadline need?" — scaling the node
// count of a machine template and picking the best parallelism mapping at
// each size until the target training time is met.
//
// Times are ranked and checked against the deadline as expected total time:
// the model's TotalTime inflated by the reliability spec's goodput overhead
// when the recipe carries one (identical to the plain time otherwise), so a
// deadline promise holds on a cluster that fails, not only on perfect
// hardware.
//
// Feasibility is not guaranteed monotone in machine size: mapping
// quantization, communication regimes that degrade with more inter-node
// traffic, and goodput overhead growing with the failure domain can all
// make a larger machine slower. MinimumNodes therefore does not blindly
// trust the first size that fits — after finding it, it probes the next
// (doubled) size, and if that larger machine regresses back past the
// deadline the scan returns an error naming both data points instead of a
// plan: a scaling curve that loses feasibility right above the chosen size
// is evidence the answer sits on a quantization artifact, and committing
// capacity on it needs a human look. A doubled size with no feasible
// mapping at all (the batch stops dividing), or one beyond MaxNodes, does
// not veto the plan — the fit size is the last word the search can check.
package solver

import (
	"errors"
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/explore"
	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// Request describes the planning problem.
type Request struct {
	// Model is the transformer to train.
	Model *transformer.Model
	// Template is the machine shape; its Nodes field is the search
	// variable (the per-node composition and links are kept).
	Template hardware.System
	// Training is the recipe; Batch.Global must be set. NumBatches fixes
	// the run length the deadline applies to.
	Training model.Training
	// TargetDays is the deadline.
	TargetDays float64
	// MaxNodes bounds the search (default 4096).
	MaxNodes int
	// MicrobatchTarget tunes N_ub per candidate mapping (default 128).
	MicrobatchTarget int
	// Eff is the efficiency model (nil = default).
	Eff efficiency.Model
}

// Plan is the solver's answer.
type Plan struct {
	// Nodes and Accelerators size the machine.
	Nodes, Accelerators int
	// Mapping is the best parallelism configuration at that size.
	Mapping parallel.Mapping
	// Days is the predicted training time.
	Days float64
	// Breakdown is the full evaluation of the chosen point.
	Breakdown *model.Breakdown
	// Rejected lists the sizes tried that missed the deadline, with their
	// best achievable times — the scaling curve the answer sits on.
	Rejected []Candidate
}

// Candidate is one examined machine size.
type Candidate struct {
	Nodes int
	Days  float64
}

// Validate checks the request.
func (r *Request) Validate() error {
	if r == nil {
		return errors.New("solver: nil request")
	}
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Template.AccelsPerNode <= 0 {
		return fmt.Errorf("solver: template needs accelerators per node, have %d", r.Template.AccelsPerNode)
	}
	if r.TargetDays <= 0 {
		return fmt.Errorf("solver: target %g days must be positive", r.TargetDays)
	}
	if r.Training.Batch.Global <= 0 {
		return errors.New("solver: training batch must be set")
	}
	return nil
}

// bestAt evaluates the best mapping of the template at the given node
// count. It returns nil when no mapping is feasible (e.g. the batch does
// not divide any data-parallel width).
func (r *Request) bestAt(nodes int) (*explore.Point, error) {
	sys := r.Template
	sys.Nodes = nodes
	if sys.Name == "" {
		sys.Name = fmt.Sprintf("%dx%d", nodes, sys.AccelsPerNode)
	}
	target := r.MicrobatchTarget
	if target == 0 {
		target = 128
	}
	points, err := explore.Sweep(explore.Scenario{
		Name:     sys.Name,
		Model:    r.Model,
		System:   &sys,
		Training: r.Training,
		Eff:      r.Eff,
	}, explore.Options{
		Batches:          []int{r.Training.Batch.Global},
		Enumerate:        parallel.EnumerateOptions{PowerOfTwo: true},
		MicrobatchTarget: target,
	})
	if err != nil {
		return nil, err
	}
	return explore.Best(points), nil
}

// MinimumNodes finds the smallest power-of-two node count whose best
// mapping meets the deadline, by expected (goodput-inflated) training time.
// It scans sizes ascending and, before accepting a fit, probes the doubled
// size: a larger machine that regresses back past the deadline turns the
// answer into an error reporting both data points (see the package comment
// on non-monotonic feasibility). The scaling curve of rejected sizes is
// returned alongside the plan.
func MinimumNodes(req Request) (*Plan, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	maxNodes := req.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 4096
	}
	var rejected []Candidate
	for nodes := 1; nodes <= maxNodes; nodes *= 2 {
		best, err := req.bestAt(nodes)
		if err != nil {
			return nil, fmt.Errorf("solver: %d nodes: %w", nodes, err)
		}
		if best == nil {
			rejected = append(rejected, Candidate{Nodes: nodes, Days: -1})
			continue
		}
		days := best.Breakdown.ExpectedTotalTime().Days()
		if days <= req.TargetDays {
			// Probe the doubled size before trusting this fit: goodput
			// inflation and communication regimes can regress past the
			// deadline as the machine grows (see the package comment).
			if next := nodes * 2; next <= maxNodes {
				nb, err := req.bestAt(next)
				if err != nil {
					return nil, fmt.Errorf("solver: %d nodes: %w", next, err)
				}
				if nb != nil {
					if nd := nb.Breakdown.ExpectedTotalTime().Days(); nd > req.TargetDays {
						return nil, fmt.Errorf(
							"solver: non-monotonic feasibility: %d nodes meet %g days at %.6g, but %d nodes regress to %.6g — the scaling curve is untrustworthy around this size, inspect the mapping quantization or communication regime before committing capacity",
							nodes, req.TargetDays, days, next, nd)
					}
				}
			}
			return &Plan{
				Nodes:        nodes,
				Accelerators: nodes * req.Template.AccelsPerNode,
				Mapping:      best.Mapping,
				Days:         days,
				Breakdown:    best.Breakdown,
				Rejected:     rejected,
			}, nil
		}
		rejected = append(rejected, Candidate{Nodes: nodes, Days: days})
	}
	return nil, fmt.Errorf("solver: no machine up to %d nodes meets %g days (best tried: %v)",
		maxNodes, req.TargetDays, tail(rejected))
}

// tail returns the last few candidates for error messages.
func tail(cs []Candidate) []Candidate {
	if len(cs) <= 3 {
		return cs
	}
	return cs[len(cs)-3:]
}
