package hardware

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"amped/internal/units"
)

func TestAcceleratorPeaks(t *testing.T) {
	// Datasheet cross-checks: peak FLOP/s at the native MAC precision.
	cases := []struct {
		a        Accelerator
		wantTF   float64 // peak TFLOP/s
		tolerate float64 // relative tolerance
	}{
		{NvidiaP100(), 10.6, 0.1},
		{NvidiaV100(), 125, 0.05},
		{NvidiaA100(), 312, 0.05},
		{NvidiaH100(), 1979, 0.05},
	}
	for _, c := range cases {
		got := c.a.PeakFLOPS() / units.Tera
		if math.Abs(got-c.wantTF)/c.wantTF > c.tolerate {
			t.Errorf("%s peak = %.1f TFLOP/s, want ~%.0f", c.a.Name, got, c.wantTF)
		}
	}
}

func TestMACRateScalesWithEfficiency(t *testing.T) {
	a := NvidiaA100()
	peak := a.PeakMACRate()
	if got := a.MACRate(1); got != peak {
		t.Errorf("MACRate(1) = %v, want peak %v", got, peak)
	}
	if got := a.MACRate(0.5); math.Abs(float64(got)-0.5*float64(peak)) > 1e-6*float64(peak) {
		t.Errorf("MACRate(0.5) = %v, want half of %v", got, peak)
	}
	if got := a.MACRate(0); got != 0 {
		t.Errorf("MACRate(0) = %v, want 0", got)
	}
}

func TestNonlinRate(t *testing.T) {
	a := NvidiaA100()
	want := 1.41e9 * 192 * 4
	if got := float64(a.NonlinRate()); math.Abs(got-want) > 1e-3*want {
		t.Errorf("NonlinRate = %v, want %v", got, want)
	}
}

func TestAcceleratorValidate(t *testing.T) {
	good := NvidiaV100()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Accelerator)
	}{
		{"freq", func(a *Accelerator) { a.Freq = 0 }},
		{"cores", func(a *Accelerator) { a.Cores = -1 }},
		{"mac units", func(a *Accelerator) { a.MACUnits = 0 }},
		{"mac width", func(a *Accelerator) { a.MACWidth = 0 }},
		{"mac precision", func(a *Accelerator) { a.MACPrecision = 0 }},
		{"nonlin units", func(a *Accelerator) { a.NonlinUnits = 0 }},
		{"nonlin precision", func(a *Accelerator) { a.NonlinPrecision = -8 }},
	}
	for _, m := range mutations {
		a := NvidiaV100()
		m.mut(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %q accepted", m.name)
		}
	}
	var nilAccel *Accelerator
	if err := nilAccel.Validate(); err == nil {
		t.Error("nil accelerator accepted")
	}
}

func TestLinkValidateAndScale(t *testing.T) {
	l := NVLinkA100()
	if err := l.Validate(); err != nil {
		t.Fatalf("preset link invalid: %v", err)
	}
	if err := (Link{Name: "x", Latency: -1, Bandwidth: 1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := (Link{Name: "x", Latency: 1, Bandwidth: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	scaled := l.Scale(2)
	if float64(scaled.Bandwidth) != 2*float64(l.Bandwidth) {
		t.Errorf("Scale(2) bandwidth = %v", scaled.Bandwidth)
	}
	if !strings.Contains(scaled.Name, "x2") {
		t.Errorf("Scale(2) name = %q, want x2 marker", scaled.Name)
	}
	if same := l.Scale(1); same.Name != l.Name {
		t.Errorf("Scale(1) renamed link to %q", same.Name)
	}
}

func TestSystemValidate(t *testing.T) {
	s := CaseStudy1System()
	if err := s.Validate(); err != nil {
		t.Fatalf("case-study-1 system invalid: %v", err)
	}
	bad := CaseStudy1System()
	bad.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	bad = CaseStudy1System()
	bad.NICsPerNode = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero NICs accepted")
	}
	bad = CaseStudy1System()
	bad.IdlePowerFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("idle power fraction > 1 accepted")
	}
	var nilSys *System
	if err := nilSys.Validate(); err == nil {
		t.Error("nil system accepted")
	}
	// Single-node systems tolerate a meaningless inter link.
	one := HGX2(8)
	one.Inter = Link{}
	if err := one.Validate(); err != nil {
		t.Errorf("single-node system with empty inter link rejected: %v", err)
	}
}

func TestTotalAccelerators(t *testing.T) {
	s := CaseStudy1System()
	if got := s.TotalAccelerators(); got != 1024 {
		t.Errorf("TotalAccelerators = %d, want 1024", got)
	}
}

func TestEffectiveInterBW(t *testing.T) {
	// Case Study I reference: one HDR NIC per accelerator.
	s := CaseStudy1System()
	if got, want := float64(s.EffectiveInterBW()), 2.0e11; math.Abs(got-want) > 1 {
		t.Errorf("EffectiveInterBW = %v, want %v", got, want)
	}
	// Case Study II: 8 accels sharing fewer NICs scales down linearly.
	low := LowEndSystem(8)
	low.NICsPerNode = 2
	if got, want := float64(low.EffectiveInterBW()), 1.0e11*2/8; math.Abs(got-want) > 1 {
		t.Errorf("low-end EffectiveInterBW = %v, want %v", got, want)
	}
	eff := low.InterLinkEffective()
	if eff.Bandwidth != low.EffectiveInterBW() {
		t.Errorf("InterLinkEffective bandwidth = %v", eff.Bandwidth)
	}
	if eff.Latency != low.Inter.Latency {
		t.Errorf("InterLinkEffective latency changed: %v", eff.Latency)
	}
}

func TestEffectiveInterBWProperty(t *testing.T) {
	// Per-accel bandwidth never exceeds NIC bandwidth * NICs and is
	// monotone in NIC count.
	f := func(accels, nics uint8) bool {
		a := int(accels)%16 + 1
		n := int(nics)%16 + 1
		s := LowEndSystem(8)
		s.AccelsPerNode = a
		s.NICsPerNode = n
		bw := float64(s.EffectiveInterBW())
		s.NICsPerNode = n + 1
		return bw <= float64(s.EffectiveInterBW())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowEndSystemShapes(t *testing.T) {
	for _, per := range []int{1, 2, 4, 8} {
		s := LowEndSystem(per)
		if err := s.Validate(); err != nil {
			t.Errorf("LowEndSystem(%d) invalid: %v", per, err)
		}
		if got := s.TotalAccelerators(); got != 1024 {
			t.Errorf("LowEndSystem(%d) total = %d, want 1024", per, got)
		}
		if s.NICsPerNode != per {
			t.Errorf("LowEndSystem(%d) NICs = %d", per, s.NICsPerNode)
		}
	}
}

func TestOpticalSystem(t *testing.T) {
	ref := OpticalSystem(OpticalOptions{AccelsPerNode: 8, EdgeAccels: 8, TotalAccels: 3072})
	if err := ref.Validate(); err != nil {
		t.Fatalf("optical system invalid: %v", err)
	}
	if got := ref.TotalAccelerators(); got != 3072 {
		t.Errorf("total = %d, want 3072", got)
	}
	// Opt. 1: every accelerator gets a fiber, so effective inter BW equals
	// the off-chip bandwidth.
	if got, want := float64(ref.EffectiveInterBW()), float64(ref.Accel.OffChipBW); math.Abs(got-want) > 1 {
		t.Errorf("Opt1 effective BW = %v, want %v", got, want)
	}
	// Opt. 2: 48 accels share 24 fibers -> half the off-chip BW each.
	big := OpticalSystem(OpticalOptions{AccelsPerNode: 48, EdgeAccels: 24, TotalAccels: 3072})
	if got, want := float64(big.EffectiveInterBW()), float64(big.Accel.OffChipBW)/2; math.Abs(got-want) > 1e-3*want {
		t.Errorf("Opt2 effective BW = %v, want %v", got, want)
	}
	// Opt. 3: doubling off-chip bandwidth doubles both links.
	fast := OpticalSystem(OpticalOptions{AccelsPerNode: 48, EdgeAccels: 24, OffChipBWFactor: 2, TotalAccels: 3072})
	if got, want := float64(fast.Intra.Bandwidth), 2*float64(big.Intra.Bandwidth); math.Abs(got-want) > 1e-3*want {
		t.Errorf("Opt3 intra BW = %v, want %v", got, want)
	}
}

func TestAcceleratorPreset(t *testing.T) {
	for _, name := range AcceleratorPresetNames() {
		a, err := AcceleratorPreset(name)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if err := a.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := AcceleratorPreset("tpu"); err == nil {
		t.Error("unknown preset accepted")
	}
	names := AcceleratorPresetNames()
	if len(names) != 4 {
		t.Errorf("preset names = %v, want 4 entries", names)
	}
	if !sortedStrings(names) {
		t.Errorf("preset names not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestSeleneLikeRoundsUp(t *testing.T) {
	s := SeleneLike(1536)
	if s.Nodes != 192 {
		t.Errorf("SeleneLike(1536) nodes = %d, want 192", s.Nodes)
	}
	odd := SeleneLike(1537)
	if odd.Nodes != 193 {
		t.Errorf("SeleneLike(1537) nodes = %d, want 193", odd.Nodes)
	}
}

func TestOversubscription(t *testing.T) {
	s := CaseStudy1System()
	base := float64(s.EffectiveInterBW())
	s.Oversubscription = 4
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := float64(s.EffectiveInterBW()); math.Abs(got-base/4) > 1e-6*base {
		t.Errorf("4:1 oversubscribed BW = %v, want %v", got, base/4)
	}
	s.Oversubscription = 0.5 // under 1 is meaningless
	if err := s.Validate(); err == nil {
		t.Error("oversubscription 0.5 accepted")
	}
	s.Oversubscription = -1
	if err := s.Validate(); err == nil {
		t.Error("negative oversubscription accepted")
	}
	// Zero means none.
	s.Oversubscription = 0
	if got := float64(s.EffectiveInterBW()); math.Abs(got-base) > 1e-6*base {
		t.Errorf("zero oversubscription changed BW: %v", got)
	}
}
