package hardware

import (
	"fmt"
	"sort"

	"amped/internal/precision"
	"amped/internal/units"
)

// Accelerator presets. MACWidth is expressed in MACs/cycle/unit; the paper's
// Table IV quotes W_FU in FLOPs/cycle/unit, i.e. exactly 2x these values
// (one MAC = one multiply + one add).

// NvidiaP100 models the Pascal P100 used in the GPipe validation (Table III):
// 56 SMs of 64 FP32 FMA lanes at 1.48 GHz boost, 9.5 TFLOP/s FP32 nominal.
func NvidiaP100() Accelerator {
	return Accelerator{
		Name:            "NVIDIA P100",
		Freq:            1.48e9,
		Cores:           56,
		MACUnits:        1,
		MACWidth:        64,
		MACPrecision:    precision.FP32,
		NonlinUnits:     112,
		NonlinWidth:     4,
		NonlinPrecision: precision.FP32,
		Memory:          16 * units.GiB,
		MemBW:           5.86e12, // 732 GB/s HBM2
		OffChipBW:       1.28e12,
		TDP:             300,
	}
}

// NvidiaV100 models the Volta V100 SXM3 of the paper's Table I validation
// node: 80 SMs with 8 tensor cores each, 64 FP16 MACs/cycle/tensor core at
// 1.53 GHz boost (125 TFLOP/s FP16 tensor peak).
func NvidiaV100() Accelerator {
	return Accelerator{
		Name:            "NVIDIA V100",
		Freq:            1.53e9,
		Cores:           80,
		MACUnits:        8,
		MACWidth:        64,
		MACPrecision:    precision.FP16,
		NonlinUnits:     160,
		NonlinWidth:     4,
		NonlinPrecision: precision.FP32,
		Memory:          31.75 * units.GiB,
		MemBW:           7.18e12, // 897 GB/s HBM2 (Table I)
		OffChipBW:       2.4e12,
		TDP:             250,
	}
}

// NvidiaA100 is the Table IV Ampere design point: f=1.41 GHz, 108 cores,
// 4 FUs/core, W_FU=512 FLOPs/cycle (256 MACs), 312 TFLOP/s FP16 dense peak.
func NvidiaA100() Accelerator {
	return Accelerator{
		Name:            "NVIDIA A100",
		Freq:            1.41e9,
		Cores:           108,
		MACUnits:        4,
		MACWidth:        256,
		MACPrecision:    precision.FP16,
		NonlinUnits:     192,
		NonlinWidth:     4,
		NonlinPrecision: precision.FP32,
		Memory:          80 * units.GiB,
		MemBW:           1.63e13, // 2039 GB/s HBM2e
		OffChipBW:       4.8e12,
		TDP:             400,
	}
}

// NvidiaH100 is the Table IV Hopper design point: f=1.8 GHz, 132 cores,
// 4 FUs/core, W_FU=1024 (Table IV quotes FLOPs/cycle at the functional
// unit's native precision). Hopper tensor cores are natively 8-bit-capable:
// 1024 FP8 MACs/cycle/FU gives ~1979 TFLOP/s FP8 dense and, via the Eq. 2
// two-pass precision scaling, ~990 TFLOP/s FP16 — both matching the
// datasheet.
func NvidiaH100() Accelerator {
	return Accelerator{
		Name:            "NVIDIA H100",
		Freq:            1.8e9,
		Cores:           132,
		MACUnits:        4,
		MACWidth:        1024,
		MACPrecision:    precision.FP8,
		NonlinUnits:     320,
		NonlinWidth:     4,
		NonlinPrecision: precision.FP32,
		Memory:          80 * units.GiB,
		MemBW:           2.68e13, // 3350 GB/s HBM3
		OffChipBW:       7.2e12,
		TDP:             700,
	}
}

// Link presets. Bandwidths are the per-accelerator (intra) or per-NIC
// (inter) values in bits/s; latencies are typical end-to-end software
// latencies for one communication step.

// NVLinkV100 is the NVLink+NVSwitch fabric of an HGX-2 (300 GB/s per GPU).
func NVLinkV100() Link { return Link{Name: "NVLink2+NVSwitch", Latency: 2e-6, Bandwidth: 2.4e12} }

// NVLinkA100 is the Table IV A100 intra-node bandwidth (2.4 Tbit/s).
func NVLinkA100() Link { return Link{Name: "NVLink3+NVSwitch", Latency: 2e-6, Bandwidth: 2.4e12} }

// NVLinkH100 is the Table IV H100 intra-node bandwidth (3.6 Tbit/s).
func NVLinkH100() Link { return Link{Name: "NVLink4+NVSwitch", Latency: 2e-6, Bandwidth: 3.6e12} }

// PCIe3x16 is the Gen3 x16 host link of the GPipe P100 systems (~126 Gbit/s).
func PCIe3x16() Link { return Link{Name: "PCIe3 x16", Latency: 5e-6, Bandwidth: 1.26e11} }

// InfinibandEDR is one EDR HCA port (100 Gbit/s), Case Study II's low end.
func InfinibandEDR() Link { return Link{Name: "InfiniBand EDR", Latency: 5e-6, Bandwidth: 1.0e11} }

// InfinibandHDR is one HDR HCA port (200 Gbit/s), Case Study I's network.
func InfinibandHDR() Link { return Link{Name: "InfiniBand HDR", Latency: 5e-6, Bandwidth: 2.0e11} }

// InfinibandNDR is one NDR HCA port (400 Gbit/s), Case Study III's baseline.
func InfinibandNDR() Link { return Link{Name: "InfiniBand NDR", Latency: 5e-6, Bandwidth: 4.0e11} }

// OpticalSubstrate returns the photonic communication substrate of Case
// Study III as an intra-node link: accelerators talk across the wafer at
// their full off-chip bandwidth with a short conversion latency.
func OpticalSubstrate(perAccelBW units.BitsPerSecond) Link {
	return Link{Name: "optical substrate", Latency: 5e-7, Bandwidth: perAccelBW}
}

// System presets.

// HGX2 is the paper's Table I validation node: up to 16 V100s behind
// NVSwitch. A single node has no meaningful inter-node link; a loopback
// placeholder keeps Validate happy for multi-node derivations.
func HGX2(gpus int) System {
	return System{
		Name:          fmt.Sprintf("HGX-2 (%d x V100)", gpus),
		Accel:         NvidiaV100(),
		Nodes:         1,
		AccelsPerNode: gpus,
		Intra:         NVLinkV100(),
		Inter:         InfinibandHDR(),
		NICsPerNode:   1,
	}
}

// CaseStudy1System is the exploration machine of Case Study I: 128 nodes of
// 8 A100s (1024 accelerators), NVLink inside, one HDR NIC per accelerator.
func CaseStudy1System() System {
	return System{
		Name:              "128x8 A100 + HDR",
		Accel:             NvidiaA100(),
		Nodes:             128,
		AccelsPerNode:     8,
		Intra:             NVLinkA100(),
		Inter:             InfinibandHDR(),
		NICsPerNode:       8,
		IdlePowerFraction: 0.3,
	}
}

// LowEndSystem is a Case Study II machine: the same 1024 A100 total but
// spread over more, thinner nodes with accels EDR NICs each.
func LowEndSystem(accelsPerNode int) System {
	nodes := 1024 / accelsPerNode
	return System{
		Name:              fmt.Sprintf("%dx%d A100 + EDR", nodes, accelsPerNode),
		Accel:             NvidiaA100(),
		Nodes:             nodes,
		AccelsPerNode:     accelsPerNode,
		Intra:             NVLinkA100(),
		Inter:             InfinibandEDR(),
		NICsPerNode:       accelsPerNode,
		IdlePowerFraction: 0.3,
	}
}

// P100Cluster is the GPipe validation machine: P100s behind PCIe3 in one
// host (Table III uses 2..8 GPUs).
func P100Cluster(gpus int) System {
	return System{
		Name:          fmt.Sprintf("%d x P100 + PCIe3", gpus),
		Accel:         NvidiaP100(),
		Nodes:         1,
		AccelsPerNode: gpus,
		Intra:         PCIe3x16(),
		Inter:         PCIe3x16(),
		NICsPerNode:   1,
	}
}

// SeleneLike is a DGX-A100 SuperPOD-shaped machine sized to hold total
// accelerators in nodes of 8, used for the Table II Megatron validation.
func SeleneLike(totalAccels int) System {
	nodes := (totalAccels + 7) / 8
	return System{
		Name:          fmt.Sprintf("Selene-like (%d x A100)", totalAccels),
		Accel:         NvidiaA100(),
		Nodes:         nodes,
		AccelsPerNode: 8,
		Intra:         NVLinkA100(),
		Inter:         InfinibandHDR(),
		NICsPerNode:   8,
	}
}

// OpticalOptions configures the Case Study III machine builder.
type OpticalOptions struct {
	// AccelsPerNode is the substrate population (8, 16, 32, 48 in Fig. 11).
	AccelsPerNode int
	// EdgeAccels is how many accelerators sit on the substrate edge and get
	// a dedicated fiber (8 for 4x2, 12 for 4x4, 20 for 4x8, 24 for 6x8).
	EdgeAccels int
	// OffChipBWFactor scales the accelerator off-chip bandwidth (Opt. 3
	// doubles and quadruples it).
	OffChipBWFactor float64
	// TotalAccels is the machine size (3072 in the paper).
	TotalAccels int
}

// OpticalSystem builds a Case Study III machine: H100-class accelerators on
// photonic substrates. Intra-node bandwidth is the (possibly scaled)
// off-chip bandwidth of one accelerator; the node's aggregate inter-node
// bandwidth is that bandwidth times the number of edge-attached fibers.
func OpticalSystem(o OpticalOptions) System {
	accel := NvidiaH100()
	if o.OffChipBWFactor <= 0 {
		o.OffChipBWFactor = 1
	}
	accel.OffChipBW = units.BitsPerSecond(float64(accel.OffChipBW) * o.OffChipBWFactor)
	nodes := o.TotalAccels / o.AccelsPerNode
	return System{
		Name: fmt.Sprintf("optical %dxH100/node (%d fibers, BW x%g)",
			o.AccelsPerNode, o.EdgeAccels, o.OffChipBWFactor),
		Accel:             accel,
		Nodes:             nodes,
		AccelsPerNode:     o.AccelsPerNode,
		Intra:             OpticalSubstrate(accel.OffChipBW),
		Inter:             Link{Name: "optical fiber", Latency: 1e-6, Bandwidth: accel.OffChipBW},
		NICsPerNode:       o.EdgeAccels,
		IdlePowerFraction: 0.3,
	}
}

// accelPresets indexes the accelerator presets for config-file lookup.
var accelPresets = map[string]func() Accelerator{
	"p100": NvidiaP100,
	"v100": NvidiaV100,
	"a100": NvidiaA100,
	"h100": NvidiaH100,
}

// AcceleratorPreset returns a named accelerator preset (case-sensitive
// lowercase key: "p100", "v100", "a100", "h100").
func AcceleratorPreset(name string) (Accelerator, error) {
	f, ok := accelPresets[name]
	if !ok {
		return Accelerator{}, fmt.Errorf("hardware: unknown accelerator preset %q (have %v)", name, AcceleratorPresetNames())
	}
	return f(), nil
}

// AcceleratorPresetNames lists the available preset keys in sorted order.
func AcceleratorPresetNames() []string {
	names := make([]string, 0, len(accelPresets))
	for n := range accelPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
