// Package hardware describes the system architecture AMPeD evaluates on:
// accelerator micro-architecture parameters (Table IV of the paper),
// communication links, nodes composed of homogeneous accelerators, and
// multi-node distributed systems.
//
// The package is purely descriptive — timing math lives in internal/model —
// but it owns the peak-throughput derivations of Eq. 3 and Eq. 4 because
// they are pure functions of the accelerator design point.
package hardware

import (
	"errors"
	"fmt"

	"amped/internal/precision"
	"amped/internal/units"
)

// Accelerator is one accelerator design point: the tunable knobs of the
// paper's Table IV plus the memory and off-chip-bandwidth attributes used by
// the memory model and the optical-substrate case study.
type Accelerator struct {
	// Name identifies the design point in reports.
	Name string
	// Freq is f, the clock frequency in cycles per second.
	Freq units.Hertz
	// Cores is N_cores, the number of compute cores (SMs on NVIDIA parts).
	Cores int
	// MACUnits is N_FU, MAC functional units per core.
	MACUnits int
	// MACWidth is W_FU, MACs per cycle per functional unit, expressed at the
	// unit's native precision MACPrecision.
	MACWidth int
	// MACPrecision is S_FU_MAC, the hardware-determined MAC operand width.
	MACPrecision precision.Precision
	// NonlinUnits is N_FU_nonlin, the non-linear (SFU) unit count. The paper
	// models these as a per-chip pool, not per core (Eq. 4 has no N_cores).
	NonlinUnits int
	// NonlinWidth is W_FU_nonlin, ops per cycle per non-linear unit.
	NonlinWidth int
	// NonlinPrecision is S_FU_nonlin.
	NonlinPrecision precision.Precision
	// Memory is the usable device memory capacity.
	Memory units.Bytes
	// MemBW is the device (HBM) memory bandwidth, the roofline input of
	// the predictive efficiency model. Zero means "not modeled".
	MemBW units.BitsPerSecond
	// OffChipBW is the aggregate off-chip I/O bandwidth of one accelerator,
	// the quantity the optical substrate of Case Study III multiplies up.
	OffChipBW units.BitsPerSecond
	// TDP is the thermal design power in watts, used by the energy model.
	TDP float64
}

// Validate checks that every structural parameter is positive.
func (a *Accelerator) Validate() error {
	switch {
	case a == nil:
		return errors.New("hardware: nil accelerator")
	case a.Freq <= 0:
		return fmt.Errorf("hardware: accelerator %q: frequency %v must be positive", a.Name, a.Freq)
	case a.Cores <= 0:
		return fmt.Errorf("hardware: accelerator %q: core count %d must be positive", a.Name, a.Cores)
	case a.MACUnits <= 0 || a.MACWidth <= 0:
		return fmt.Errorf("hardware: accelerator %q: MAC units %d x width %d must be positive", a.Name, a.MACUnits, a.MACWidth)
	case !a.MACPrecision.Valid():
		return fmt.Errorf("hardware: accelerator %q: invalid MAC precision %d", a.Name, a.MACPrecision)
	case a.NonlinUnits <= 0 || a.NonlinWidth <= 0:
		return fmt.Errorf("hardware: accelerator %q: nonlinear units %d x width %d must be positive", a.Name, a.NonlinUnits, a.NonlinWidth)
	case !a.NonlinPrecision.Valid():
		return fmt.Errorf("hardware: accelerator %q: invalid nonlinear precision %d", a.Name, a.NonlinPrecision)
	}
	return nil
}

// PeakMACRate is the peak MAC throughput f·N_cores·N_FU·W_FU of Eq. 3
// before the microbatch-efficiency derating.
func (a *Accelerator) PeakMACRate() units.OpsPerSecond {
	return units.OpsPerSecond(float64(a.Freq) * float64(a.Cores) * float64(a.MACUnits) * float64(a.MACWidth))
}

// MACRate is the effective MAC throughput f·N_cores·N_FU·W_FU·eff(ub) of
// Eq. 3. The reciprocal of this value is C_MAC.
func (a *Accelerator) MACRate(eff float64) units.OpsPerSecond {
	return units.OpsPerSecond(float64(a.PeakMACRate()) * eff)
}

// NonlinRate is the non-linear-op throughput f·N_FU_nonlin·W_FU_nonlin of
// Eq. 4; its reciprocal is C_nonlin.
func (a *Accelerator) NonlinRate() units.OpsPerSecond {
	return units.OpsPerSecond(float64(a.Freq) * float64(a.NonlinUnits) * float64(a.NonlinWidth))
}

// PeakFLOPS is the marketing-style peak in FLOP/s (2 FLOPs per MAC) at the
// unit's native precision, handy for sanity checks against datasheets.
func (a *Accelerator) PeakFLOPS() float64 {
	return float64(a.PeakMACRate()) * units.FLOPsPerMAC
}

// MemBWBytes is the device memory bandwidth in bytes per second — the one
// bits→bytes conversion every roofline consumer (the per-sublayer op
// pricing in internal/model, RooflinePredictor, efficiency.Roofline) must
// derive from, so the paths cannot disagree on units. Zero means memory
// bandwidth is not modeled.
func (a *Accelerator) MemBWBytes() float64 { return float64(a.MemBW) / 8 }

// Link is a communication channel with a fixed per-message latency and a
// bandwidth, the (C, BW) pairs of Eq. 6, 7, 9 and 11.
type Link struct {
	// Name identifies the interconnect generation in reports.
	Name string
	// Latency is the per-communication-step latency C (seconds).
	Latency units.Seconds
	// Bandwidth is the point-to-point bandwidth BW (bits/s) seen by one
	// accelerator participating in the transfer.
	Bandwidth units.BitsPerSecond
}

// Validate checks the link is physically meaningful.
func (l Link) Validate() error {
	if l.Latency < 0 {
		return fmt.Errorf("hardware: link %q: negative latency", l.Name)
	}
	if l.Bandwidth <= 0 {
		return fmt.Errorf("hardware: link %q: bandwidth must be positive", l.Name)
	}
	return nil
}

// Scale returns a copy of the link with bandwidth multiplied by factor,
// used by the optical-substrate what-if scenarios.
func (l Link) Scale(factor float64) Link {
	l.Bandwidth = units.BitsPerSecond(float64(l.Bandwidth) * factor)
	if factor != 1 {
		l.Name = fmt.Sprintf("%s x%g", l.Name, factor)
	}
	return l
}

// System is the distributed machine: N_nodes homogeneous nodes, each with
// AccelsPerNode accelerators joined by Intra, and nodes joined by Inter.
type System struct {
	// Name identifies the machine configuration in reports.
	Name string
	// Accel is the accelerator design every worker uses.
	Accel Accelerator
	// Nodes is N_nodes.
	Nodes int
	// AccelsPerNode is the number of accelerators in one node.
	AccelsPerNode int
	// Intra is the intra-node link (NVLink class or an optical substrate).
	Intra Link
	// Inter is the inter-node link as seen by a single NIC (EDR/HDR/NDR
	// InfiniBand class, or optical fiber in Case Study III).
	Inter Link
	// NICsPerNode is the number of network cards per node. Case Study II
	// varies this 1..8; the effective inter-node bandwidth one accelerator
	// can use is Inter.Bandwidth * NICsPerNode / AccelsPerNode.
	NICsPerNode int
	// IdlePowerFraction is the fraction of TDP an accelerator draws while
	// idling in a pipeline bubble; Case Study II argues ~0.3 is the
	// break-even point. Zero means "not modeled".
	IdlePowerFraction float64
	// Oversubscription is the inter-node fabric's oversubscription ratio
	// (full bisection = 1, a 2:1 tapered fat-tree = 2): the effective
	// inter-node bandwidth every accelerator sees is divided by it. Zero
	// means 1.
	Oversubscription float64
}

// Validate checks structural consistency of the whole system description.
func (s *System) Validate() error {
	if s == nil {
		return errors.New("hardware: nil system")
	}
	if err := s.Accel.Validate(); err != nil {
		return err
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("hardware: system %q: node count %d must be positive", s.Name, s.Nodes)
	}
	if s.AccelsPerNode <= 0 {
		return fmt.Errorf("hardware: system %q: accelerators per node %d must be positive", s.Name, s.AccelsPerNode)
	}
	if s.NICsPerNode <= 0 {
		return fmt.Errorf("hardware: system %q: NICs per node %d must be positive", s.Name, s.NICsPerNode)
	}
	if err := s.Intra.Validate(); err != nil {
		return fmt.Errorf("hardware: system %q intra-node: %w", s.Name, err)
	}
	if s.Nodes > 1 {
		if err := s.Inter.Validate(); err != nil {
			return fmt.Errorf("hardware: system %q inter-node: %w", s.Name, err)
		}
	}
	if s.IdlePowerFraction < 0 || s.IdlePowerFraction > 1 {
		return fmt.Errorf("hardware: system %q: idle power fraction %v outside [0,1]", s.Name, s.IdlePowerFraction)
	}
	if s.Oversubscription < 0 || (s.Oversubscription > 0 && s.Oversubscription < 1) {
		return fmt.Errorf("hardware: system %q: oversubscription %v must be >= 1 (or 0 for none)", s.Name, s.Oversubscription)
	}
	return nil
}

// TotalAccelerators is the total worker count N_nodes · AccelsPerNode.
func (s *System) TotalAccelerators() int { return s.Nodes * s.AccelsPerNode }

// EffectiveInterBW is the inter-node bandwidth available to one accelerator:
// the node's aggregate NIC bandwidth shared across its accelerators. With
// one NIC per accelerator (the paper's high-end reference) this equals the
// NIC bandwidth; Case Study II's low-end systems divide it down.
func (s *System) EffectiveInterBW() units.BitsPerSecond {
	if s.AccelsPerNode == 0 {
		return 0
	}
	over := s.Oversubscription
	if over < 1 {
		over = 1
	}
	return units.BitsPerSecond(float64(s.Inter.Bandwidth) * float64(s.NICsPerNode) /
		float64(s.AccelsPerNode) / over)
}

// InterLinkEffective returns the inter-node link with its bandwidth replaced
// by the per-accelerator effective bandwidth; model equations use this view.
func (s *System) InterLinkEffective() Link {
	l := s.Inter
	l.Bandwidth = s.EffectiveInterBW()
	return l
}
