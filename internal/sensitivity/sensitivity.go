// Package sensitivity performs one-at-a-time sensitivity analysis on an
// AMPeD design point: perturb each hardware/system knob by a relative step
// and measure the elasticity of training time — the percentage change in
// time per percent change in the knob. This is the quantitative core of
// the hardware-software co-design loop the paper motivates: it ranks which
// accelerator or network investment actually buys training time for a
// given model and mapping.
package sensitivity

import (
	"errors"
	"fmt"
	"sort"

	"amped/internal/efficiency"
	"amped/internal/model"
	"amped/internal/units"
)

// Knob identifies one perturbable parameter.
type Knob string

// The analyzed knobs. Peak compute covers the f·N_cores·N_FU·W_FU product
// of Eq. 3 — its factors are interchangeable in the model, so one knob
// stands for all of them.
const (
	KnobPeakCompute Knob = "peak MAC throughput"
	KnobNonlinRate  Knob = "non-linear unit rate"
	KnobIntraBW     Knob = "intra-node bandwidth"
	KnobIntraLat    Knob = "intra-node latency"
	KnobInterBW     Knob = "inter-node bandwidth"
	KnobInterLat    Knob = "inter-node latency"
	KnobEfficiency  Knob = "microbatch efficiency"
	KnobBubbleRatio Knob = "bubble ratio R"
)

// Result is one knob's measured elasticity.
type Result struct {
	// Knob identifies the parameter.
	Knob Knob
	// Elasticity is d(log time)/d(log knob): -0.5 means a 1% increase in
	// the knob cuts training time by 0.5%.
	Elasticity float64
	// Baseline and Perturbed are the absolute per-batch times.
	Baseline, Perturbed units.Seconds
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("%-26s elasticity %+.3f", r.Knob, r.Elasticity)
}

// Analyze measures the elasticity of the estimator's per-batch time to
// every knob, using the given relative step (e.g. 0.01 for 1%). Results
// are sorted by impact: most time-reducing (most negative) first.
func Analyze(est model.Estimator, step float64) ([]Result, error) {
	if step <= 0 || step >= 1 {
		return nil, fmt.Errorf("sensitivity: step %g outside (0,1)", step)
	}
	base, err := est.Evaluate()
	if err != nil {
		return nil, err
	}
	baseTime := float64(base.PerBatch())
	if baseTime <= 0 {
		return nil, errors.New("sensitivity: degenerate baseline time")
	}

	perturbations := []struct {
		knob Knob
		mut  func(*model.Estimator, float64)
	}{
		{KnobPeakCompute, func(e *model.Estimator, f float64) {
			e.System.Accel.Freq = units.Hertz(float64(e.System.Accel.Freq) * f)
		}},
		{KnobNonlinRate, func(e *model.Estimator, f float64) {
			// Units are plentiful (hundreds), so integer rounding stays a
			// negligible error on the step; width (single digits) would not.
			e.System.Accel.NonlinUnits = scaleInt(e.System.Accel.NonlinUnits, f)
		}},
		{KnobIntraBW, func(e *model.Estimator, f float64) {
			e.System.Intra.Bandwidth = units.BitsPerSecond(float64(e.System.Intra.Bandwidth) * f)
		}},
		{KnobIntraLat, func(e *model.Estimator, f float64) {
			e.System.Intra.Latency = units.Seconds(float64(e.System.Intra.Latency) * f)
		}},
		{KnobInterBW, func(e *model.Estimator, f float64) {
			e.System.Inter.Bandwidth = units.BitsPerSecond(float64(e.System.Inter.Bandwidth) * f)
		}},
		{KnobInterLat, func(e *model.Estimator, f float64) {
			e.System.Inter.Latency = units.Seconds(float64(e.System.Inter.Latency) * f)
		}},
		{KnobBubbleRatio, func(e *model.Estimator, f float64) {
			r := e.Training.BubbleRatio
			if r == 0 {
				r = 1
			}
			e.Training.BubbleRatio = r * f
		}},
	}

	var out []Result
	for _, p := range perturbations {
		cloned := clone(est)
		p.mut(&cloned, 1+step)
		bd, err := cloned.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("sensitivity: %s: %w", p.knob, err)
		}
		t := float64(bd.PerBatch())
		out = append(out, Result{
			Knob:       p.knob,
			Elasticity: (t - baseTime) / baseTime / step,
			Baseline:   units.Seconds(baseTime),
			Perturbed:  units.Seconds(t),
		})
	}

	// Efficiency is a model, not a scalar field: wrap it.
	effCloned := clone(est)
	effCloned.Eff = scaledEff{base: est.Eff, factor: 1 + step}
	bd, err := effCloned.Evaluate()
	if err != nil {
		return nil, fmt.Errorf("sensitivity: %s: %w", KnobEfficiency, err)
	}
	out = append(out, Result{
		Knob:       KnobEfficiency,
		Elasticity: (float64(bd.PerBatch()) - baseTime) / baseTime / step,
		Baseline:   units.Seconds(baseTime),
		Perturbed:  bd.PerBatch(),
	})

	sort.Slice(out, func(i, j int) bool {
		if out[i].Elasticity != out[j].Elasticity {
			return out[i].Elasticity < out[j].Elasticity
		}
		return out[i].Knob < out[j].Knob
	})
	return out, nil
}

// clone deep-copies the estimator's mutable referents so perturbations
// stay independent.
func clone(est model.Estimator) model.Estimator {
	sys := *est.System
	est.System = &sys
	m := *est.Model
	est.Model = &m
	return est
}

// scaleInt multiplies an int by f, keeping at least 1.
func scaleInt(v int, f float64) int {
	n := int(float64(v)*f + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// scaledEff multiplies a base efficiency model's output (clamped to 1).
type scaledEff struct {
	base   efficiency.Model
	factor float64
}

// Eff implements efficiency.Model.
func (s scaledEff) Eff(ub float64) float64 {
	base := s.base
	if base == nil {
		base = efficiency.Default() // the estimator's nil-Eff default
	}
	e := base.Eff(ub) * s.factor
	if e > 1 {
		e = 1
	}
	return e
}

// TopInvestment returns the knob with the strongest time-reducing
// elasticity, or "" when none reduces time.
func TopInvestment(results []Result) Knob {
	if len(results) == 0 || results[0].Elasticity >= 0 {
		return ""
	}
	return results[0].Knob
}

// CommBound reports whether the design point is communication-bound: the
// combined bandwidth elasticities outweigh the compute-side ones.
func CommBound(results []Result) bool {
	var comm, compute float64
	for _, r := range results {
		switch r.Knob {
		case KnobIntraBW, KnobInterBW, KnobIntraLat, KnobInterLat:
			comm += -r.Elasticity
		case KnobPeakCompute, KnobEfficiency:
			compute += -r.Elasticity
		}
	}
	return comm > compute
}
