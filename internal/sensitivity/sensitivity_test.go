package sensitivity

import (
	"math"
	"strings"
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// estimatorFor builds a Case-Study-I estimator with the given mapping.
func estimatorFor(mp parallel.Mapping, nub int) model.Estimator {
	m := transformer.Megatron145B()
	sys := hardware.CaseStudy1System()
	return model.Estimator{
		Model:   &m,
		System:  &sys,
		Mapping: mp,
		Training: model.Training{
			Batch: parallel.Batch{Global: 8192, Microbatches: nub},
		},
	}
}

func byKnob(results []Result) map[Knob]Result {
	out := make(map[Knob]Result, len(results))
	for _, r := range results {
		out[r.Knob] = r
	}
	return out
}

func TestAnalyzeComputeBoundPoint(t *testing.T) {
	// TP intra + DP inter at a healthy microbatch: compute dominates.
	res, err := Analyze(estimatorFor(parallel.Mapping{TPIntra: 8, DPInter: 128}, 1), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("results = %d", len(res))
	}
	m := byKnob(res)
	// More peak compute reduces time strongly...
	if e := m[KnobPeakCompute].Elasticity; e > -0.5 {
		t.Errorf("peak-compute elasticity = %v, want strongly negative", e)
	}
	// ...and efficiency acts the same way (both divide C_MAC).
	diff := m[KnobPeakCompute].Elasticity - m[KnobEfficiency].Elasticity
	if math.Abs(diff) > 0.15 {
		t.Errorf("compute (%v) vs efficiency (%v) elasticities diverge",
			m[KnobPeakCompute].Elasticity, m[KnobEfficiency].Elasticity)
	}
	// No pipeline: the bubble knob is inert.
	if e := m[KnobBubbleRatio].Elasticity; e != 0 {
		t.Errorf("bubble elasticity without PP = %v", e)
	}
	// Bandwidth knobs reduce time (negative) but less than compute here.
	if e := m[KnobIntraBW].Elasticity; e > 0 {
		t.Errorf("intra-BW elasticity = %v, want <= 0", e)
	}
	if CommBound(res) {
		t.Error("compute-bound point classified as comm-bound")
	}
	if TopInvestment(res) != KnobPeakCompute && TopInvestment(res) != KnobEfficiency {
		t.Errorf("top investment = %q", TopInvestment(res))
	}
}

func TestAnalyzeCommBoundPoint(t *testing.T) {
	// Inter-node TP with a large microbatch: wire time matters. Starve
	// compute-side sensitivity by fixing efficiency near its ceiling.
	est := estimatorFor(parallel.Mapping{TPIntra: 8, TPInter: 8, PPInter: 8, DPInter: 2}, 4)
	est.System.Inter = est.System.Inter.Scale(0.05) // a congested fabric
	res, err := Analyze(est, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m := byKnob(res)
	if e := m[KnobInterBW].Elasticity; e > -0.2 {
		t.Errorf("inter-BW elasticity = %v, want strongly negative", e)
	}
	if !CommBound(res) {
		t.Error("comm-bound point classified as compute-bound")
	}
}

func TestElasticitySigns(t *testing.T) {
	// Latency knobs can only hurt (positive elasticity) and resource knobs
	// can only help (negative), whatever the mapping.
	for _, mp := range []parallel.Mapping{
		{TPIntra: 8, DPInter: 128},
		{TPIntra: 8, PPInter: 8, DPInter: 16},
		{DPIntra: 8, TPInter: 2, DPInter: 64},
	} {
		res, err := Analyze(estimatorFor(mp, 0), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			switch r.Knob {
			case KnobIntraLat, KnobInterLat, KnobBubbleRatio:
				if r.Elasticity < -1e-9 {
					t.Errorf("%v: %s elasticity %v negative", mp, r.Knob, r.Elasticity)
				}
			default:
				if r.Elasticity > 1e-9 {
					t.Errorf("%v: %s elasticity %v positive", mp, r.Knob, r.Elasticity)
				}
			}
		}
	}
}

func TestAnalyzeSorted(t *testing.T) {
	res, err := Analyze(estimatorFor(parallel.Mapping{TPIntra: 8, PPInter: 2, DPInter: 64}, 64), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Elasticity < res[i-1].Elasticity {
			t.Fatalf("not sorted at %d: %v", i, res)
		}
	}
	if !strings.Contains(res[0].String(), "elasticity") {
		t.Errorf("String() = %q", res[0].String())
	}
}

func TestAnalyzeDoesNotMutateInput(t *testing.T) {
	est := estimatorFor(parallel.Mapping{TPIntra: 8, DPInter: 128}, 1)
	freqBefore := est.System.Accel.Freq
	intraBefore := est.System.Intra.Bandwidth
	if _, err := Analyze(est, 0.05); err != nil {
		t.Fatal(err)
	}
	if est.System.Accel.Freq != freqBefore || est.System.Intra.Bandwidth != intraBefore {
		t.Error("Analyze mutated the caller's system")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	est := estimatorFor(parallel.Mapping{TPIntra: 8, DPInter: 128}, 1)
	if _, err := Analyze(est, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Analyze(est, 1); err == nil {
		t.Error("step 1 accepted")
	}
	est.Training.Batch.Global = -5
	if _, err := Analyze(est, 0.01); err == nil {
		t.Error("broken estimator accepted")
	}
}

func TestHelpersEdgeCases(t *testing.T) {
	if TopInvestment(nil) != "" {
		t.Error("TopInvestment(nil) non-empty")
	}
	if TopInvestment([]Result{{Knob: KnobInterLat, Elasticity: 0.5}}) != "" {
		t.Error("positive-only results returned an investment")
	}
	if scaleInt(1, 0.1) != 1 {
		t.Error("scaleInt floor broken")
	}
	if scaleInt(100, 1.01) != 101 {
		t.Errorf("scaleInt(100, 1.01) = %d", scaleInt(100, 1.01))
	}
}
