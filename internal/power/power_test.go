package power

import (
	"math"
	"strings"
	"testing"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

func evalCS2(mp parallel.Mapping, accelsPerNode int) (*model.Breakdown, *hardware.System) {
	m := transformer.Megatron145B()
	sys := hardware.LowEndSystem(accelsPerNode)
	e := &model.Estimator{
		Model: &m, System: &sys, Mapping: mp,
		Training: model.Training{
			Batch:      parallel.Batch{Global: 8192, Microbatches: 64},
			NumBatches: 100,
		},
	}
	b, err := e.Evaluate()
	if err != nil {
		panic(err)
	}
	return b, &sys
}

func TestFromBreakdownAccounting(t *testing.T) {
	b, sys := evalCS2(parallel.Mapping{TPIntra: 4, PPInter: 16, DPInter: 16}, 4)
	est, err := FromBreakdown(b, sys)
	if err != nil {
		t.Fatal(err)
	}
	if est.Workers != 1024 {
		t.Errorf("workers = %d", est.Workers)
	}
	if est.Total() <= 0 {
		t.Error("non-positive energy")
	}
	if est.IdleEnergy <= 0 {
		t.Error("PP run has no idle (bubble) energy")
	}
	// Idle energy is charged at the idle fraction, so average power sits
	// strictly between idle and full TDP.
	avg := est.AveragePower() / float64(est.Workers)
	if avg >= sys.Accel.TDP || avg <= sys.Accel.TDP*sys.IdlePowerFraction {
		t.Errorf("average per-GPU power %v outside (idle, TDP)", avg)
	}
	if est.MWh() <= 0 {
		t.Error("MWh non-positive")
	}
	if !strings.Contains(est.String(), "MWh") {
		t.Errorf("String() = %q", est.String())
	}
}

func TestNoBubbleNoIdleEnergy(t *testing.T) {
	b, sys := evalCS2(parallel.Mapping{TPIntra: 4, DPInter: 256}, 4)
	if b.Bubble != 0 {
		t.Fatalf("DP-only mapping has bubble %v", b.Bubble)
	}
	est, err := FromBreakdown(b, sys)
	if err != nil {
		t.Fatal(err)
	}
	if est.IdleEnergy != 0 {
		t.Errorf("idle energy = %v without bubbles", est.IdleEnergy)
	}
	w := float64(est.Workers)
	if got := est.AveragePower() / w; math.Abs(got-sys.Accel.TDP) > 1e-6 {
		t.Errorf("average power %v, want TDP %v", got, sys.Accel.TDP)
	}
}

func TestIdleFractionScalesIdleEnergy(t *testing.T) {
	b, sys := evalCS2(parallel.Mapping{TPIntra: 4, PPInter: 16, DPInter: 16}, 4)
	half := *sys
	half.IdlePowerFraction = 0.15
	a, err := FromBreakdown(b, sys) // 0.30
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromBreakdown(b, &half)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.IdleEnergy / c.IdleEnergy; math.Abs(got-2) > 1e-9 {
		t.Errorf("idle energy ratio = %v, want 2", got)
	}
	if a.ActiveEnergy != c.ActiveEnergy {
		t.Error("active energy changed with idle fraction")
	}
}

func TestBreakEvenIdleFraction(t *testing.T) {
	// Case Study II: PP takes ~4% longer but idles ~11% of the time; the
	// paper argues idle power under ~30% of TDP makes PP the energy win.
	fast, sys := evalCS2(parallel.Mapping{TPIntra: 4, DPInter: 256}, 4)
	slow, _ := evalCS2(parallel.Mapping{TPIntra: 4, PPInter: 64, DPInter: 4}, 4)
	f, err := BreakEvenIdleFraction(fast, slow, sys)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalTime() > fast.TotalTime() {
		// Slower with bubbles: break-even must be a real threshold < 1.
		if f >= 1 {
			t.Errorf("break-even fraction = %v, want < 1", f)
		}
	}
	// Verify the break-even point by direct energy comparison just above
	// and below it (when it is a meaningful probability).
	if f > 0.01 && f < 0.99 {
		check := func(idle float64) float64 {
			s := *sys
			s.IdlePowerFraction = idle
			es, err := FromBreakdown(slow, &s)
			if err != nil {
				t.Fatal(err)
			}
			ef, err := FromBreakdown(fast, &s)
			if err != nil {
				t.Fatal(err)
			}
			return es.Total() - ef.Total()
		}
		if check(f*0.9) > 0 {
			t.Errorf("slow config not cheaper below break-even %v", f)
		}
		if check(math.Min(f*1.1, 1)) < 0 {
			t.Errorf("slow config not costlier above break-even %v", f)
		}
	}
}

func TestBreakEvenDegenerateCases(t *testing.T) {
	fast, sys := evalCS2(parallel.Mapping{TPIntra: 4, DPInter: 256}, 4)
	// Slow has no bubbles and is genuinely slower (bigger TP inter here).
	slow, _ := evalCS2(parallel.Mapping{TPIntra: 4, TPInter: 2, DPInter: 128}, 4)
	if slow.Bubble != 0 {
		t.Skip("mapping unexpectedly has bubbles")
	}
	f, err := BreakEvenIdleFraction(fast, slow, sys)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalTime() > fast.TotalTime() && f >= 0 {
		t.Errorf("bubble-free slower config break-even = %v, want negative sentinel", f)
	}
	if _, err := BreakEvenIdleFraction(nil, slow, sys); err == nil {
		t.Error("nil fast accepted")
	}
	if _, err := BreakEvenIdleFraction(fast, slow, nil); err == nil {
		t.Error("nil system accepted")
	}
}

func TestFromBreakdownErrors(t *testing.T) {
	b, sys := evalCS2(parallel.Mapping{TPIntra: 4, DPInter: 256}, 4)
	if _, err := FromBreakdown(nil, sys); err == nil {
		t.Error("nil breakdown accepted")
	}
	if _, err := FromBreakdown(b, nil); err == nil {
		t.Error("nil system accepted")
	}
	bad := *sys
	bad.IdlePowerFraction = 2
	if _, err := FromBreakdown(b, &bad); err == nil {
		t.Error("idle fraction 2 accepted")
	}
}
