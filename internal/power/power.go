// Package power is the energy-model extension the paper sketches in Case
// Study II: accelerators draw full power while computing or communicating
// and a reduced idle power during pipeline bubbles, so a slightly slower
// pipeline-parallel configuration can still win on energy when its bubbles
// idle cheaply enough.
package power

import (
	"errors"
	"fmt"

	"amped/internal/hardware"
	"amped/internal/model"
	"amped/internal/units"
)

// Estimate is the energy accounting of one training run.
type Estimate struct {
	// ActiveEnergy is accelerator-seconds at full TDP (joules).
	ActiveEnergy float64
	// IdleEnergy is accelerator-seconds at idle power during bubbles.
	IdleEnergy float64
	// Time is the wall-clock training time the energy was spent over.
	Time units.Seconds
	// Workers is the accelerator count.
	Workers int
}

// Total returns the total accelerator energy in joules.
func (e Estimate) Total() float64 { return e.ActiveEnergy + e.IdleEnergy }

// MWh converts the total energy to megawatt-hours, the scale at which
// large-model training is discussed.
func (e Estimate) MWh() float64 { return e.Total() / 3.6e9 }

// AveragePower returns the fleet's mean power draw in watts.
func (e Estimate) AveragePower() float64 {
	if e.Time <= 0 {
		return 0
	}
	return e.Total() / float64(e.Time)
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%.2f MWh over %v on %d accelerators (avg %.0f kW)",
		e.MWh(), e.Time, e.Workers, e.AveragePower()/1e3)
}

// FromBreakdown derives the energy estimate for a training run evaluated by
// the analytical model: bubble time idles at sys.IdlePowerFraction·TDP,
// everything else runs at TDP. Host, network and cooling power are out of
// scope, as in the paper.
func FromBreakdown(b *model.Breakdown, sys *hardware.System) (Estimate, error) {
	if b == nil {
		return Estimate{}, errors.New("power: nil breakdown")
	}
	if sys == nil {
		return Estimate{}, errors.New("power: nil system")
	}
	if sys.IdlePowerFraction < 0 || sys.IdlePowerFraction > 1 {
		return Estimate{}, fmt.Errorf("power: idle fraction %v outside [0,1]", sys.IdlePowerFraction)
	}
	total := float64(b.TotalTime())
	perBatch := float64(b.PerBatch())
	var bubbleShare float64
	if perBatch > 0 {
		bubbleShare = float64(b.Bubble) / perBatch
	}
	bubbleTime := total * bubbleShare
	activeTime := total - bubbleTime
	w := float64(b.Workers)
	tdp := sys.Accel.TDP
	return Estimate{
		ActiveEnergy: activeTime * tdp * w,
		IdleEnergy:   bubbleTime * tdp * sys.IdlePowerFraction * w,
		Time:         units.Seconds(total),
		Workers:      b.Workers,
	}, nil
}

// BreakEvenIdleFraction answers the paper's Case Study II question: given a
// faster configuration (fast) and a slower one whose bubbles idle (slow),
// below what idle-power fraction does the slow configuration consume less
// energy? Returns a value that may fall outside [0,1]: above 1 means slow
// always wins, below 0 means it never does.
func BreakEvenIdleFraction(fast, slow *model.Breakdown, sys *hardware.System) (float64, error) {
	if fast == nil || slow == nil {
		return 0, errors.New("power: nil breakdown")
	}
	if sys == nil {
		return 0, errors.New("power: nil system")
	}
	tFast := float64(fast.TotalTime())
	tSlow := float64(slow.TotalTime())
	pbSlow := float64(slow.PerBatch())
	if pbSlow <= 0 {
		return 0, errors.New("power: degenerate slow breakdown")
	}
	bubble := tSlow * float64(slow.Bubble) / pbSlow
	active := tSlow - bubble
	if bubble <= 0 {
		// No bubbles to save in: slow wins only if outright faster.
		if tSlow < tFast {
			return 2, nil
		}
		return -1, nil
	}
	// Energy parity (equal worker counts, equal TDP):
	// tFast = active + f·bubble  =>  f = (tFast - active) / bubble.
	return (tFast - active) / bubble, nil
}
