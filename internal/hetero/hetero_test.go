package hetero

import (
	"testing"

	"amped/internal/hardware"
	"amped/internal/parallel"
	"amped/internal/transformer"
)

// mixedPipeline is an A100+H100 two-generation deployment of Megatron 145B.
func mixedPipeline() Pipeline {
	m := transformer.Megatron145B()
	return Pipeline{
		Model: &m,
		Stages: []Stage{
			{Accel: hardware.NvidiaA100(), TP: 8},
			{Accel: hardware.NvidiaA100(), TP: 8},
			{Accel: hardware.NvidiaH100(), TP: 8},
			{Accel: hardware.NvidiaH100(), TP: 8},
		},
		Batch:        parallel.Batch{Global: 512, Microbatches: 64},
		Interconnect: hardware.InfinibandHDR(),
	}
}

func TestBalanceProportionalToSpeed(t *testing.T) {
	p, err := mixedPipeline().Balance()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range p.Stages {
		total += s.Layers
	}
	if total != 80 {
		t.Fatalf("balanced layers = %d, want 80", total)
	}
	// H100 stages (FP8-native: ~4 passes faster on FP16-param mixed
	// precision than... concretely: faster) must carry more layers.
	if p.Stages[2].Layers <= p.Stages[0].Layers {
		t.Errorf("H100 stage layers %d not above A100's %d",
			p.Stages[2].Layers, p.Stages[0].Layers)
	}
	// Identical stages get identical assignments (within one layer of
	// rounding).
	if d := p.Stages[0].Layers - p.Stages[1].Layers; d > 1 || d < -1 {
		t.Errorf("equal stages differ by %d layers", d)
	}
}

func TestBalancedBeatsNaiveSplit(t *testing.T) {
	base := mixedPipeline()
	balanced, err := base.Balance()
	if err != nil {
		t.Fatal(err)
	}
	balancedRes, err := balanced.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Naive even split: 20 layers per stage.
	naive := base
	naive.Stages = make([]Stage, len(base.Stages))
	copy(naive.Stages, base.Stages)
	for i := range naive.Stages {
		naive.Stages[i].Layers = 20
	}
	naiveRes, err := naive.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if balancedRes.PerBatch >= naiveRes.PerBatch {
		t.Errorf("balanced %v not faster than naive %v", balancedRes.PerBatch, naiveRes.PerBatch)
	}
	// The naive split's bottleneck is an A100 stage (overloaded slow gear).
	if naiveRes.Bottleneck >= 2 {
		t.Errorf("naive bottleneck = stage %d, want an A100 stage", naiveRes.Bottleneck)
	}
}

func TestHomogeneousDegenerates(t *testing.T) {
	// All-equal stages: balance gives the even split.
	m := transformer.Megatron145B()
	p := Pipeline{
		Model: &m,
		Stages: []Stage{
			{Accel: hardware.NvidiaA100(), TP: 8},
			{Accel: hardware.NvidiaA100(), TP: 8},
			{Accel: hardware.NvidiaA100(), TP: 8},
			{Accel: hardware.NvidiaA100(), TP: 8},
		},
		Batch:        parallel.Batch{Global: 512, Microbatches: 64},
		Interconnect: hardware.InfinibandHDR(),
	}
	balanced, err := p.Balance()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range balanced.Stages {
		if s.Layers != 20 {
			t.Errorf("stage %d layers = %d, want 20", i, s.Layers)
		}
	}
}

func TestMoreMicrobatchesAmortizeFill(t *testing.T) {
	p, err := mixedPipeline().Balance()
	if err != nil {
		t.Fatal(err)
	}
	p.Batch.Microbatches = 8
	few, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	p.Batch.Microbatches = 256
	many, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Per-batch time with more microbatches is lower or equal: same total
	// work, smaller fill/drain share (and ub effects can help or hurt, so
	// compare the fill share directly).
	fewFill := float64(few.PerBatch) - float64(few.StageTimes[few.Bottleneck])*8
	manyFill := float64(many.PerBatch) - float64(many.StageTimes[many.Bottleneck])*256
	if fewFill <= 0 || manyFill <= 0 {
		t.Fatalf("fill times: %v, %v", fewFill, manyFill)
	}
	if manyFill/float64(many.PerBatch) >= fewFill/float64(few.PerBatch) {
		t.Error("fill share did not shrink with more microbatches")
	}
}

func TestFasterStageNeverBottleneck(t *testing.T) {
	p, err := mixedPipeline().Balance()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StageTimes) != 4 {
		t.Fatalf("stage times = %v", res.StageTimes)
	}
	for _, st := range res.StageTimes {
		if st <= 0 {
			t.Fatalf("non-positive stage time %v", st)
		}
	}
	// After balancing, stage times should be near-equal: the max/min ratio
	// stays under the one-layer quantization bound.
	var min, max float64
	for i, st := range res.StageTimes {
		v := float64(st)
		if i == 0 || v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.35 {
		t.Errorf("balanced stage imbalance %vx", max/min)
	}
}

func TestValidateRejections(t *testing.T) {
	var nilP *Pipeline
	if err := nilP.Validate(); err == nil {
		t.Error("nil pipeline accepted")
	}
	p := mixedPipeline()
	p.Stages = nil
	if err := p.Validate(); err == nil {
		t.Error("no stages accepted")
	}
	p = mixedPipeline()
	p.Stages[1].TP = 0
	if err := p.Validate(); err == nil {
		t.Error("zero TP accepted")
	}
	p = mixedPipeline()
	p.Stages[0].Layers = 5 // partial assignment
	if err := p.Validate(); err == nil {
		t.Error("partial layer assignment accepted")
	}
	p = mixedPipeline()
	p.Batch.Global = 0
	if err := p.Validate(); err == nil {
		t.Error("zero batch accepted")
	}
	p = mixedPipeline()
	if _, err := p.Evaluate(); err == nil {
		t.Error("unbalanced pipeline evaluated")
	}
	// Too many stages for the layers.
	m := transformer.MinGPT() // 12 layers
	small := Pipeline{
		Model:        &m,
		Batch:        parallel.Batch{Global: 16},
		Interconnect: hardware.NVLinkV100(),
	}
	for i := 0; i < 13; i++ {
		small.Stages = append(small.Stages, Stage{Accel: hardware.NvidiaV100(), TP: 1})
	}
	if err := small.Validate(); err == nil {
		t.Error("13 stages for 12 layers accepted")
	}
}
