// Package hetero extends AMPeD to heterogeneous accelerators — the
// extension the paper's conclusion claims is straightforward ("AMPeD can be
// easily extended for heterogeneous accelerators") but does not implement.
//
// The natural heterogeneous deployment is pipeline parallelism across
// accelerator generations: each pipeline stage runs on one homogeneous
// group, and the pipeline clocks at its slowest stage. This package
// balances the layer assignment against per-stage speed and evaluates the
// resulting batch time, reusing the homogeneous model's per-layer compute
// accounting.
package hetero

import (
	"errors"
	"fmt"

	"amped/internal/efficiency"
	"amped/internal/eventsim"
	"amped/internal/hardware"
	"amped/internal/parallel"
	"amped/internal/pipesim"
	"amped/internal/precision"
	"amped/internal/transformer"
	"amped/internal/units"
)

// Stage is one homogeneous pipeline stage group.
type Stage struct {
	// Accel is the accelerator type serving this stage.
	Accel hardware.Accelerator
	// TP is the tensor-parallel width inside the stage (divides compute).
	TP int
	// Layers is the number of transformer blocks assigned; Balance fills
	// this in.
	Layers int
}

// Pipeline is a heterogeneous pipeline-parallel deployment.
type Pipeline struct {
	// Model is the transformer being trained.
	Model *transformer.Model
	// Stages are the accelerator groups in pipeline order.
	Stages []Stage
	// Batch is the global batch and microbatch schedule; data parallelism
	// is out of scope for the heterogeneous estimator (DP replicas would
	// simply multiply).
	Batch parallel.Batch
	// Operands sets the precisions (zero value = Mixed16).
	Operands precision.Operands
	// Eff is the microbatch-efficiency model (nil = default).
	Eff efficiency.Model
	// Interconnect carries activations between stages.
	Interconnect hardware.Link
}

// Validate checks the pipeline's structure.
func (p *Pipeline) Validate() error {
	if p == nil {
		return errors.New("hetero: nil pipeline")
	}
	if err := p.Model.Validate(); err != nil {
		return err
	}
	if len(p.Stages) == 0 {
		return errors.New("hetero: no stages")
	}
	if len(p.Stages) > p.Model.Layers {
		return fmt.Errorf("hetero: %d stages exceed %d layers", len(p.Stages), p.Model.Layers)
	}
	total := 0
	for i, s := range p.Stages {
		if err := s.Accel.Validate(); err != nil {
			return fmt.Errorf("hetero: stage %d: %w", i, err)
		}
		if s.TP < 1 {
			return fmt.Errorf("hetero: stage %d: TP %d must be >= 1", i, s.TP)
		}
		if s.Layers < 0 {
			return fmt.Errorf("hetero: stage %d: negative layer count", i)
		}
		total += s.Layers
	}
	if total != 0 && total != p.Model.Layers {
		return fmt.Errorf("hetero: stages hold %d layers, model has %d", total, p.Model.Layers)
	}
	if p.Batch.Global <= 0 {
		return errors.New("hetero: batch must be positive")
	}
	return p.Interconnect.Validate()
}

// stageRate returns a stage's effective MAC throughput for the pipeline's
// operands at the given efficiency: peak x TP / precision passes.
func (p *Pipeline) stageRate(s Stage, eff float64) float64 {
	operands := p.Operands
	if operands == (precision.Operands{}) {
		operands = precision.Mixed16()
	}
	scale := float64(operands.MACScale(s.Accel.MACPrecision))
	return float64(s.Accel.MACRate(eff)) * float64(s.TP) / scale
}

// Balance assigns the model's layers to stages proportionally to their
// effective throughput (largest-remainder rounding, at least one layer per
// stage), minimizing the slowest-stage time under the per-layer-uniform
// cost this model family has. It returns a copy of the pipeline with the
// assignment filled in.
func (p Pipeline) Balance() (Pipeline, error) {
	probe := p
	for i := range probe.Stages {
		probe.Stages[i].Layers = 0
	}
	if err := probe.Validate(); err != nil {
		return Pipeline{}, err
	}
	// Relative speeds at a common reference efficiency; the ratio is what
	// matters and eff cancels for identical curves.
	rates := make([]float64, len(p.Stages))
	var totalRate float64
	for i, s := range p.Stages {
		rates[i] = p.stageRate(s, 1)
		totalRate += rates[i]
	}
	L := p.Model.Layers
	out := p
	out.Stages = make([]Stage, len(p.Stages))
	copy(out.Stages, p.Stages)

	// Largest-remainder apportionment with a 1-layer floor.
	type frac struct {
		idx  int
		frac float64
	}
	assigned := 0
	remainders := make([]frac, len(p.Stages))
	for i := range out.Stages {
		exact := float64(L) * rates[i] / totalRate
		n := int(exact)
		if n < 1 {
			n = 1
		}
		out.Stages[i].Layers = n
		assigned += n
		remainders[i] = frac{idx: i, frac: exact - float64(int(exact))}
	}
	for assigned > L { // the 1-layer floors oversubscribed tiny stages
		// Take from the stage with the most layers.
		maxIdx := 0
		for i := range out.Stages {
			if out.Stages[i].Layers > out.Stages[maxIdx].Layers {
				maxIdx = i
			}
		}
		if out.Stages[maxIdx].Layers <= 1 {
			return Pipeline{}, fmt.Errorf("hetero: %d stages cannot hold %d layers", len(p.Stages), L)
		}
		out.Stages[maxIdx].Layers--
		assigned--
	}
	for assigned < L {
		// Give to the largest remainder, ties to the fastest stage.
		best := -1
		for i, r := range remainders {
			if best == -1 || r.frac > remainders[best].frac ||
				(r.frac == remainders[best].frac && rates[r.idx] > rates[remainders[best].idx]) {
				best = i
			}
		}
		out.Stages[remainders[best].idx].Layers++
		remainders[best].frac = -1
		assigned++
	}
	return out, nil
}

// Result is the heterogeneous evaluation outcome.
type Result struct {
	// PerBatch is the pipelined batch time: N_ub slowest-stage steps plus
	// the fill/drain of the remaining stages.
	PerBatch units.Seconds
	// StageTimes are each stage's per-microbatch forward+backward times.
	StageTimes []units.Seconds
	// Bottleneck is the index of the slowest stage.
	Bottleneck int
	// Efficiency is the microbatch efficiency used.
	Efficiency float64
}

// StageProfile is a balanced pipeline's per-stage timing decomposition —
// the inputs a discrete-event schedule simulation needs, derived exactly as
// Evaluate derives its closed-form estimate (same microbatch defaulting,
// efficiency lookup, per-stage rates and activation volume).
type StageProfile struct {
	// Fwd is each stage's one-microbatch forward compute time
	// (layer MACs x assigned layers / effective rate); the backward is
	// Evaluate's fixed 2x forward.
	Fwd []units.Seconds
	// Comm is the stage-boundary activation transfer time for one
	// microbatch (interconnect latency + activation volume / bandwidth).
	Comm units.Seconds
	// Microbatches is the resolved N_ub (defaulted to the stage count,
	// clamped to the global batch).
	Microbatches int
	// Efficiency is the microbatch efficiency used.
	Efficiency float64
}

// StageTimes computes the per-stage timing profile of a balanced pipeline.
// Stages must have their layer assignment set (call Balance first).
func (p *Pipeline) StageTimes() (*StageProfile, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	totalLayers := 0
	for _, s := range p.Stages {
		totalLayers += s.Layers
	}
	if totalLayers != p.Model.Layers {
		return nil, errors.New("hetero: stages have no layer assignment (call Balance)")
	}
	effModel := p.Eff
	if effModel == nil {
		effModel = efficiency.Default()
	}
	nub := p.Batch.Microbatches
	if nub <= 0 {
		nub = len(p.Stages)
	}
	if nub > p.Batch.Global {
		nub = p.Batch.Global
	}
	ub := float64(p.Batch.Global) / float64(nub)
	eff := effModel.Eff(ub)

	layerMACs := float64(p.Model.LayerMACs(0, p.Batch.Global)) / float64(nub)
	actBits := float64(p.Model.ActivationsPerLayer(p.Batch.Global)) / float64(nub) * 16
	prof := &StageProfile{
		Fwd:          make([]units.Seconds, len(p.Stages)),
		Comm:         units.Seconds(float64(p.Interconnect.Latency) + actBits/float64(p.Interconnect.Bandwidth)),
		Microbatches: nub,
		Efficiency:   eff,
	}
	for i, s := range p.Stages {
		prof.Fwd[i] = units.Seconds(layerMACs * float64(s.Layers) / p.stageRate(s, eff))
	}
	return prof, nil
}

// Simulate runs the balanced pipeline through the pipesim discrete-event
// simulator under the given schedule, expressing the stages' unequal speeds
// through StageScale: the simulator's reference forward time is the slowest
// stage's, and every stage is scaled by fwd_i / fwd_ref (the backward, at
// Evaluate's fixed 2x forward, scales identically). It returns the DES
// result alongside the profile that parameterized it.
func (p *Pipeline) Simulate(sched pipesim.Schedule) (*pipesim.Result, *StageProfile, error) {
	prof, err := p.StageTimes()
	if err != nil {
		return nil, nil, err
	}
	var fRef units.Seconds
	for _, f := range prof.Fwd {
		if f > fRef {
			fRef = f
		}
	}
	if fRef <= 0 {
		return nil, nil, errors.New("hetero: degenerate stage times (zero forward compute)")
	}
	scale := make([]float64, len(prof.Fwd))
	for i, f := range prof.Fwd {
		scale[i] = float64(f) / float64(fRef)
	}
	res, err := pipesim.Run(pipesim.Config{
		Stages:       len(prof.Fwd),
		Microbatches: prof.Microbatches,
		FwdTime:      eventsim.Time(fRef),
		BwdTime:      eventsim.Time(2 * fRef),
		CommTime:     eventsim.Time(prof.Comm),
		Schedule:     sched,
		StageScale:   scale,
	})
	if err != nil {
		return nil, nil, err
	}
	return res, prof, nil
}

// Evaluate computes the batch time of a balanced heterogeneous pipeline.
// Stages must have their layer assignment set (call Balance first).
func (p *Pipeline) Evaluate() (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	totalLayers := 0
	for _, s := range p.Stages {
		totalLayers += s.Layers
	}
	if totalLayers != p.Model.Layers {
		return nil, errors.New("hetero: stages have no layer assignment (call Balance)")
	}
	effModel := p.Eff
	if effModel == nil {
		effModel = efficiency.Default()
	}
	nub := p.Batch.Microbatches
	if nub <= 0 {
		nub = len(p.Stages)
	}
	if nub > p.Batch.Global {
		nub = p.Batch.Global
	}
	ub := float64(p.Batch.Global) / float64(nub)
	eff := effModel.Eff(ub)

	times := make([]units.Seconds, len(p.Stages))
	var slowest units.Seconds
	bottleneck := 0
	layerMACs := float64(p.Model.LayerMACs(0, p.Batch.Global)) / float64(nub)
	actBits := float64(p.Model.ActivationsPerLayer(p.Batch.Global)) / float64(nub) * 16
	for i, s := range p.Stages {
		rate := p.stageRate(s, eff)
		compute := 3 * layerMACs * float64(s.Layers) / rate // fwd + 2x bwd
		comm := float64(p.Interconnect.Latency) + actBits/float64(p.Interconnect.Bandwidth)
		times[i] = units.Seconds(compute + comm)
		if times[i] > slowest {
			slowest = times[i]
			bottleneck = i
		}
	}
	// Pipeline makespan: N_ub steps of the bottleneck plus one fill/drain
	// traversal of every other stage.
	total := float64(slowest) * float64(nub)
	for i, t := range times {
		if i != bottleneck {
			total += float64(t)
		}
	}
	return &Result{
		PerBatch:   units.Seconds(total),
		StageTimes: times,
		Bottleneck: bottleneck,
		Efficiency: eff,
	}, nil
}
